"""Deterministic fault injection for the grid/fleet harness.

Every recovery path the engine grew — pool rebuild after a SIGKILLed
worker, cache-write failure demoting to no-cache, quarantine of corrupt
entries, journal resume after a harness crash, telemetry-sink loss —
must be *exercised*, not believed. This module injects those faults
deterministically, from a seed, so a chaos test is as replayable as
any other cell of the matrix:

* :class:`ChaosPolicy` rides into worker processes (it is plain
  picklable data) and strikes by **spec key**: SIGKILL the worker
  executing a chosen cell (once — a *fuse file* burns before the kill,
  so the retry recovers), or delay it past its timeout;
* :func:`ChaosPolicy.plan` picks victims with a seeded RNG over the
  sorted spec keys — same seed, same grid, same casualties, always;
* ``abort_after`` simulates the *harness* dying mid-grid: the engine
  raises :class:`ChaosAbort` after N settled cells, leaving the journal
  and cache exactly as a real crash would;
* :class:`FaultyFS` wraps the cache's filesystem shim and fails chosen
  write/replace operations (the fsync-failure and torn-write paths);
* :func:`corrupt_cache_entry` damages a stored entry on disk the way a
  torn write would (truncation or byte garbling), for integrity tests;
* :class:`FailingSink` is a file-like that starts raising after N
  writes — the telemetry-sink failure mode.

None of this perturbs simulated time: chaos acts on the *harness*, so
a recovered or resumed run must still be byte-identical to a clean one
— which is exactly the property the chaos battery asserts.
"""

from __future__ import annotations

import io
import os
import random
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.errors import ReproError
from repro.resilience.integrity import QUARANTINE_DIR, CacheFS


class ChaosAbort(ReproError):
    """The chaos policy simulated a harness crash mid-grid."""


@dataclass(frozen=True)
class ChaosPolicy:
    """Declarative, seedable fault plan for one grid execution.

    Workers consult :meth:`maybe_injure` (kill/delay by spec key); the
    driver consults :attr:`abort_after`. All fields are JSON-scalar
    containers so the policy forks/pickles into workers unchanged.
    """

    seed: int = 0
    #: Spec keys whose executing worker is SIGKILLed (once each).
    kill_keys: frozenset = frozenset()
    #: Spec keys delayed by ``slow_s`` before executing (drive timeouts).
    slow_keys: frozenset = frozenset()
    slow_s: float = 0.0
    #: Simulate a harness crash after this many non-cached settles.
    abort_after: Optional[int] = None
    #: Directory holding one *fuse file* per kill: created before the
    #: SIGKILL, so each victim dies exactly once and the retry lives.
    #: None disables the fuse (every attempt dies — resume territory).
    fuse_dir: Optional[str] = None
    #: PID of the planning harness; kills only fire in *other*
    #: processes (a serial in-process grid must never shoot itself).
    harness_pid: int = field(default_factory=os.getpid)

    @classmethod
    def plan(
        cls,
        keys: Iterable[str],
        *,
        seed: int = 0,
        kills: int = 0,
        slow: int = 0,
        slow_s: float = 0.0,
        abort_after: Optional[int] = None,
        fuse_dir: Optional[str] = None,
    ) -> "ChaosPolicy":
        """Pick victims deterministically from ``seed`` over sorted keys."""
        pool = sorted(set(keys))
        rng = random.Random(seed)
        kills = min(kills, len(pool))
        kill_keys = frozenset(rng.sample(pool, kills)) if kills else frozenset()
        remaining = [k for k in pool if k not in kill_keys]
        slow = min(slow, len(remaining))
        slow_keys = frozenset(rng.sample(remaining, slow)) if slow else frozenset()
        return cls(seed=seed, kill_keys=kill_keys, slow_keys=slow_keys,
                   slow_s=slow_s, abort_after=abort_after, fuse_dir=fuse_dir)

    # ------------------------------------------------------------ worker side

    def _fuse_path(self, key: str) -> Optional[Path]:
        if self.fuse_dir is None:
            return None
        return Path(self.fuse_dir) / f"fuse-{key[:16]}"

    def fuse_burnt(self, key: str) -> bool:
        fuse = self._fuse_path(key)
        return fuse is not None and fuse.exists()

    def maybe_injure(self, key: str) -> None:
        """Apply worker-side faults for ``key`` (called in the worker).

        Delay first (timeout injection), then kill — a key in both sets
        dies, which is the more interesting casualty.
        """
        if key in self.slow_keys and self.slow_s > 0:
            time.sleep(self.slow_s)
        if key in self.kill_keys and os.getpid() != self.harness_pid:
            fuse = self._fuse_path(key)
            if fuse is not None:
                if fuse.exists():
                    return  # already died once; let the retry succeed
                fuse.parent.mkdir(parents=True, exist_ok=True)
                fuse.touch()
            os.kill(os.getpid(), signal.SIGKILL)


# --------------------------------------------------------------------------
# Filesystem fault injection
# --------------------------------------------------------------------------


class FaultyFS(CacheFS):
    """A :class:`CacheFS` that fails chosen operations deterministically.

    ``fail_writes`` / ``fail_replaces`` name 0-based operation indices
    (per category, in call order) that raise ``OSError`` — e.g.
    ``FaultyFS(fail_writes=(0,))`` makes the very first cache write
    look like a full disk. State is per-instance and driver-side (the
    cache writes from the harness process), so injection is exact.
    """

    def __init__(
        self,
        fail_writes: Sequence[int] = (),
        fail_replaces: Sequence[int] = (),
        errno_msg: str = "chaos: injected filesystem failure",
    ) -> None:
        self.fail_writes = frozenset(fail_writes)
        self.fail_replaces = frozenset(fail_replaces)
        self.errno_msg = errno_msg
        self.writes = 0
        self.replaces = 0

    def write_text(self, path, text) -> None:
        index = self.writes
        self.writes += 1
        if index in self.fail_writes:
            raise OSError(f"{self.errno_msg} (write #{index}: {path})")
        super().write_text(path, text)

    def replace(self, src, dst) -> None:
        index = self.replaces
        self.replaces += 1
        if index in self.fail_replaces:
            raise OSError(f"{self.errno_msg} (replace #{index}: {dst})")
        super().replace(src, dst)


def corrupt_cache_entry(
    root: os.PathLike | str,
    *,
    seed: int = 0,
    key: Optional[str] = None,
    mode: str = "truncate",
) -> Path:
    """Damage one stored cache file in place, deterministically.

    Picks the victim by seeded choice over the sorted entry files
    (or the entry for ``key`` when given) and either truncates it to
    half (a torn write) or garbles its tail bytes (silent corruption
    that only the checksum footer can catch). Returns the victim path.
    """
    root = Path(root)
    candidates = [
        p for p in sorted(root.rglob("*.json"))
        if QUARANTINE_DIR not in p.relative_to(root).parts
        and ".tmp" not in p.name
    ]
    if key is not None:
        candidates = [p for p in candidates if p.name.startswith(key)]
    if not candidates:
        raise ChaosAbort(f"no cache entries under {root} to corrupt")
    victim = random.Random(seed).choice(candidates)
    data = victim.read_bytes()
    if mode == "truncate":
        victim.write_bytes(data[: max(1, len(data) // 2)])
    elif mode == "garble":
        tail = bytes((b ^ 0x5A) for b in data[-16:])
        victim.write_bytes(data[:-16] + tail)
    else:
        raise ValueError(f"unknown corruption mode {mode!r}")
    return victim


class FailingSink(io.TextIOBase):
    """A text sink that raises ``OSError`` after ``succeed`` writes.

    Drives the telemetry JSONL sink's containment path: the tracer must
    disable the sink with a warning and keep recording in memory.
    """

    def __init__(self, succeed: int = 0) -> None:
        self.succeed = succeed
        self.writes = 0
        self.buffer_lines: list[str] = []

    def write(self, text: str) -> int:
        self.writes += 1
        if self.writes > self.succeed:
            raise OSError("chaos: telemetry sink lost")
        self.buffer_lines.append(text)
        return len(text)
