"""Crash-safe grid execution: journal + resume, integrity, chaos, policy.

The parallel engine (:mod:`repro.experiments.parallel`) promises that a
grid's results are byte-identical however they were produced — serial,
pooled, or cached. This package extends that promise across *failures*:

* :mod:`repro.resilience.journal` — an append-only JSONL record of
  every cell's lifecycle, durable per record, replayable after any
  crash; ``--resume`` skips completed cells and **re-verifies** their
  cached bytes against the journaled result hash;
* :mod:`repro.resilience.integrity` — checksum footers on every cache
  entry and artifact, verification on read, quarantine (never crash)
  for corrupt files, and the ``cache verify|gc`` maintenance pass;
* :mod:`repro.resilience.chaos` — deterministic, seedable fault
  injection (worker SIGKILL, injected fsync/write failures, telemetry
  sink loss, timeout delays, simulated harness crash) so every
  recovery path above is exercised in tests;
* :mod:`repro.resilience.policy` — exponential backoff with key-seeded
  jitter, a failure-rate circuit breaker that shrinks the pool and
  falls back to serial before giving up, and the structured
  :class:`~repro.resilience.policy.RunReport`
  (completed / degraded / failed).

House rule, inherited from the rest of the platform: every recovery
path preserves byte identity — a resumed, degraded, or
quarantine-recovered run's aggregate bytes equal an uninterrupted
run's, and the chaos battery asserts exactly that.
"""

from __future__ import annotations

from repro.resilience.chaos import ChaosAbort, ChaosPolicy, FailingSink, FaultyFS
from repro.resilience.integrity import (
    CacheAudit,
    CacheFS,
    CacheIntegrityError,
    GcStats,
    gc_cache,
    verify_cache,
)
from repro.resilience.journal import (
    JournalError,
    JournalState,
    ResumeError,
    RunJournal,
    grid_digest,
    replay_journal,
    result_hash,
)
from repro.resilience.policy import (
    CircuitBreaker,
    RetryPolicy,
    RunReport,
    classify_failure,
)

__all__ = [
    "CacheAudit",
    "CacheFS",
    "CacheIntegrityError",
    "ChaosAbort",
    "ChaosPolicy",
    "CircuitBreaker",
    "FailingSink",
    "FaultyFS",
    "GcStats",
    "JournalError",
    "JournalState",
    "ResumeError",
    "RetryPolicy",
    "RunJournal",
    "RunReport",
    "classify_failure",
    "gc_cache",
    "grid_digest",
    "replay_journal",
    "result_hash",
    "verify_cache",
]
