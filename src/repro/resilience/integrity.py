"""Cache integrity: checksum footers, quarantine, verify/gc.

The content-addressed result cache names every entry by the sha256 of
its *spec*; nothing in that address proves the *bytes on disk* are the
bytes the worker produced. A torn write (power loss between ``write``
and ``rename`` on a non-atomic filesystem), a bit flip, or an operator
``truncate`` leaves a file that parses as garbage — or worse, parses as
valid JSON with a wrong value.

This module closes that gap:

* every cache file carries a **checksum footer** — a final line
  ``#sha256=<hex digest of the body>`` appended after the single-line
  JSON body. Verification is one hash over the body on read;
* a file whose footer does not match (or whose body no longer parses)
  is **quarantined**: moved into ``<root>/quarantine/`` — demoted to a
  cache miss, never fatal, and preserved for forensics instead of
  silently unlinked;
* footer-less files are **legacy** entries written before this scheme;
  they stay readable (their JSON must still parse) so a pre-existing
  cache survives the upgrade, and ``cache verify`` reports them;
* all filesystem traffic goes through an injectable :class:`CacheFS`
  shim so the chaos harness (:mod:`repro.resilience.chaos`) can inject
  deterministic write/fsync failures into every path that tests must
  exercise.

:func:`verify_cache` and :func:`gc_cache` back the
``python -m repro cache verify|gc`` subcommands.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.errors import ReproError

#: Marker introducing the checksum footer line. The body is single-line
#: canonical JSON, so the *last* occurrence of ``\n#sha256=`` splits
#: body from footer unambiguously.
FOOTER_MARK = "\n#sha256="

#: Subdirectory of a cache root that holds quarantined (corrupt) files.
QUARANTINE_DIR = "quarantine"


class CacheIntegrityError(ReproError):
    """A cache file failed its checksum or structural verification."""


def body_digest(body: str) -> str:
    """sha256 hex digest of a cache file body (footer input)."""
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


def attach_footer(body: str) -> str:
    """The on-disk representation: body + checksum footer line."""
    return f"{body}{FOOTER_MARK}{body_digest(body)}\n"


def split_verified(text: str) -> tuple[Optional[str], str]:
    """Split a cache file into ``(body, status)``.

    ``status`` is ``"ok"`` (footer present and matching), ``"legacy"``
    (no footer — a pre-integrity file, body returned unverified), or
    ``"corrupt"`` (footer present but wrong — body is ``None``).
    """
    idx = text.rfind(FOOTER_MARK)
    if idx < 0:
        return text, "legacy"
    body = text[:idx]
    footer = text[idx + len(FOOTER_MARK):].strip()
    if footer == body_digest(body):
        return body, "ok"
    return None, "corrupt"


# --------------------------------------------------------------------------
# Filesystem shim
# --------------------------------------------------------------------------


class CacheFS:
    """The filesystem operations the cache performs, as an object.

    The default implementation is the real filesystem with durable
    writes (flush + fsync before rename, so a crash cannot publish a
    half-written file). The chaos harness substitutes a
    :class:`~repro.resilience.chaos.FaultyFS` that fails chosen
    operations deterministically — every error-handling branch in the
    cache is reachable from a test.
    """

    def read_text(self, path: os.PathLike | str) -> str:
        return Path(path).read_text(encoding="utf-8")

    def write_text(self, path: os.PathLike | str, text: str) -> None:
        """Write + flush + fsync (durable before any subsequent rename)."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())

    def replace(self, src: os.PathLike | str, dst: os.PathLike | str) -> None:
        os.replace(src, dst)

    def mkdir(self, path: os.PathLike | str) -> None:
        Path(path).mkdir(parents=True, exist_ok=True)

    def unlink(self, path: os.PathLike | str) -> None:
        with contextlib.suppress(OSError):
            Path(path).unlink()

    def move(self, src: os.PathLike | str, dst: os.PathLike | str) -> None:
        os.replace(src, dst)


def quarantine_path(root: os.PathLike | str, path: os.PathLike | str) -> Path:
    """Where ``path`` lands when quarantined under cache ``root``."""
    return Path(root) / QUARANTINE_DIR / Path(path).name


def quarantine_file(
    root: os.PathLike | str, path: os.PathLike | str, fs: Optional[CacheFS] = None
) -> Optional[Path]:
    """Move a corrupt cache file into the quarantine directory.

    Returns the new location, or None when the move itself failed (the
    file is unlinked as a last resort — a corrupt entry must never stay
    where the cache would re-read it).
    """
    fs = fs or CacheFS()
    target = quarantine_path(root, path)
    try:
        fs.mkdir(target.parent)
        fs.move(path, target)
        return target
    except OSError:
        fs.unlink(path)
        return None


# --------------------------------------------------------------------------
# Whole-cache audit: verify and gc
# --------------------------------------------------------------------------


@dataclass
class CacheAudit:
    """Outcome of one :func:`verify_cache` walk."""

    root: str
    scanned: int = 0
    ok: int = 0
    #: Footer-less files whose body still parses (pre-integrity cache).
    legacy: int = 0
    #: Files that failed verification (repo-relative paths).
    corrupt: list[str] = field(default_factory=list)
    #: Where each corrupt file was moved (parallel to ``corrupt``).
    quarantined: list[str] = field(default_factory=list)
    #: Leftover ``*.tmp*`` staging files from interrupted writes.
    tmp_orphans: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.corrupt

    def summary(self) -> str:
        parts = [f"{self.scanned} file(s) scanned", f"{self.ok} ok"]
        if self.legacy:
            parts.append(f"{self.legacy} legacy (no footer)")
        parts.append(f"{len(self.corrupt)} corrupt")
        if self.quarantined:
            parts.append(f"{len(self.quarantined)} quarantined")
        if self.tmp_orphans:
            parts.append(f"{len(self.tmp_orphans)} orphan tmp file(s)")
        return ", ".join(parts)


def _is_tmp(path: Path) -> bool:
    """Staging debris: ``*.tmp*`` files, and anything under (or being)
    a ``.stage-*`` directory — staged entry files keep their final
    names, so the directory, not the filename, marks them."""
    if ".tmp" in path.name:
        return True
    return any(part.startswith(".stage-") for part in path.parts)


def _cache_files(root: Path) -> list[Path]:
    """Every entry/artifact file under ``root``, quarantine excluded."""
    out = []
    for path in sorted(root.rglob("*.json")):
        if QUARANTINE_DIR in path.relative_to(root).parts:
            continue
        if _is_tmp(path):
            continue
        out.append(path)
    return out


def verify_cache(
    root: os.PathLike | str,
    *,
    quarantine: bool = True,
    fs: Optional[CacheFS] = None,
) -> CacheAudit:
    """Checksum-verify every file of a cache tree.

    Corrupt files (bad footer, or a body that no longer parses as JSON)
    are moved to quarantine when ``quarantine=True``, else left in
    place and only reported. Footer-less files count as ``legacy`` when
    their JSON parses, corrupt otherwise.
    """
    fs = fs or CacheFS()
    root = Path(root)
    audit = CacheAudit(root=str(root))
    if not root.exists():
        return audit
    for path in _cache_files(root):
        audit.scanned += 1
        try:
            body, status = split_verified(fs.read_text(path))
        except OSError:
            body, status = None, "corrupt"
        if status != "corrupt":
            try:
                json.loads(body if body is not None else "")
            except ValueError:
                status = "corrupt"
        if status == "ok":
            audit.ok += 1
        elif status == "legacy":
            audit.legacy += 1
        else:
            audit.corrupt.append(str(path))
            if quarantine:
                moved = quarantine_file(root, path, fs)
                if moved is not None:
                    audit.quarantined.append(str(moved))
    for path in sorted(root.rglob("*")):
        if path.is_file() and _is_tmp(path):
            audit.tmp_orphans.append(str(path))
    return audit


@dataclass
class GcStats:
    """Outcome of one :func:`gc_cache` pass."""

    root: str
    removed_tmp: int = 0
    removed_stale: int = 0
    removed_orphan_artifacts: int = 0
    removed_quarantined: int = 0
    bytes_freed: int = 0

    def summary(self) -> str:
        return (f"{self.removed_tmp} tmp, {self.removed_stale} stale-version, "
                f"{self.removed_orphan_artifacts} orphan artifact(s), "
                f"{self.removed_quarantined} quarantined file(s) removed "
                f"({self.bytes_freed:,} bytes freed)")


def gc_cache(
    root: os.PathLike | str,
    *,
    current_version: int,
    purge_quarantine: bool = False,
    fs: Optional[CacheFS] = None,
) -> GcStats:
    """Garbage-collect a cache tree.

    Removes interrupted-write staging files, entries whose recorded
    cache version is not ``current_version`` (they would be discarded
    on read anyway), artifact files whose result entry is gone, and —
    with ``purge_quarantine`` — previously quarantined corpses.
    """
    fs = fs or CacheFS()
    root = Path(root)
    stats = GcStats(root=str(root))
    if not root.exists():
        return stats

    def _rm(path: Path) -> int:
        size = 0
        with contextlib.suppress(OSError):
            size = path.stat().st_size
        fs.unlink(path)
        stats.bytes_freed += size
        return size

    for path in sorted(root.rglob("*")):
        if path.is_file() and _is_tmp(path):
            _rm(path)
            stats.removed_tmp += 1
    # Stale-version result entries (and their sibling artifacts).
    for path in _cache_files(root):
        if path.name.endswith((".obs.json", ".series.json")):
            continue
        body, status = split_verified(fs.read_text(path))
        if status == "corrupt":
            continue  # verify's job, not gc's
        try:
            payload = json.loads(body if body is not None else "")
            version = payload.get("version")
        except (ValueError, AttributeError):
            continue
        if version != current_version:
            stem = path.name[: -len(".json")]
            for victim in (path,
                           path.with_name(f"{stem}.obs.json"),
                           path.with_name(f"{stem}.series.json")):
                if victim.exists():
                    _rm(victim)
                    stats.removed_stale += 1
    # Orphan artifacts: .obs/.series files whose result entry is gone.
    for path in _cache_files(root):
        if not path.name.endswith((".obs.json", ".series.json")):
            continue
        stem = path.name.rsplit(".", 2)[0]
        if not path.with_name(f"{stem}.json").exists():
            _rm(path)
            stats.removed_orphan_artifacts += 1
    if purge_quarantine:
        qdir = root / QUARANTINE_DIR
        if qdir.exists():
            for path in sorted(qdir.iterdir()):
                if path.is_file():
                    _rm(path)
                    stats.removed_quarantined += 1
            with contextlib.suppress(OSError):
                qdir.rmdir()
    return stats
