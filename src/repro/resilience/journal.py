"""Crash-safe run journal: append-only JSONL lifecycle of a grid.

A long grid (a thousand fleet shards, say) can die at cell 900 — the
worker OOM-killed past its retry budget, the harness itself SIGKILLed,
the machine rebooted. Without a durable record, everything not yet in
the cache is re-scheduled from scratch *and* everything already cached
is trusted blindly. The journal fixes both halves:

* every cell's lifecycle (``scheduled`` / ``started`` / ``done`` /
  ``failed`` / ``cached`` / ``resumed``) is appended as one JSON line,
  flushed and fsynced per record — a crash can lose at most the partial
  final line, which :func:`replay_journal` tolerates by design;
* a ``done`` record carries the **result hash** (sha256 over the
  canonical encoded result bytes), so ``--resume`` does not just skip
  completed cells — it re-verifies that the cached bytes still decode
  to exactly what the journal witnessed. A mismatch demotes the entry
  (quarantine + re-run), preserving the engine's byte-identity
  guarantee across interruptions;
* the header pins a **grid digest** (sha256 over the sorted spec keys).
  Resuming against a changed matrix is a hard :class:`ResumeError`,
  never a silent partial re-run of the wrong grid.

The journal is deliberately ignorant of :class:`RunSpec` — it speaks
spec *keys* (the cache's content addresses) so it has no import cycle
with the engine and replays without rebuilding workloads.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Optional

from repro.errors import ReproError

#: Bump when the journal record shape changes incompatibly.
JOURNAL_VERSION = 1


class JournalError(ReproError):
    """A journal file could not be written or is structurally unusable."""


class ResumeError(JournalError):
    """A resume request cannot be honored safely (matrix changed, ...)."""


def grid_digest(keys: Iterable[str]) -> str:
    """Stable digest of a grid's identity: sha256 over sorted spec keys."""
    h = hashlib.sha256()
    for key in sorted(set(keys)):
        h.update(key.encode("ascii"))
        h.update(b"\n")
    return h.hexdigest()


def result_hash(encoded: dict) -> str:
    """sha256 of a canonical encoded run result (the ``done`` witness).

    Input is the :func:`repro.experiments.parallel.encode_result` dict
    (after the harness-telemetry side channels are stripped); the same
    canonical JSON the byte-identity gates compare.
    """
    blob = json.dumps(encoded, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class RunJournal:
    """Append-only JSONL writer for one grid execution.

    Records are durable individually (flush + fsync per line): the
    cost is noise next to a simulation cell, and it is exactly what
    makes the final line the *only* thing a crash can corrupt.

    A journal writer is harness-side only — workers never touch it —
    so there is no cross-process interleaving to defend against.
    """

    def __init__(self, path: os.PathLike | str, *, fresh: bool = True) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        try:
            self._fh = open(self.path, "w" if fresh else "a", encoding="utf-8")
        except OSError as exc:
            raise JournalError(f"cannot open journal {self.path}: {exc}") from exc

    @classmethod
    def create(cls, path: os.PathLike | str, keys: Iterable[str],
               **meta: Any) -> "RunJournal":
        """Start a fresh journal for a grid identified by its spec keys."""
        keys = list(keys)
        journal = cls(path, fresh=True)
        journal._write({
            "type": "header", "version": JOURNAL_VERSION,
            "grid_digest": grid_digest(keys), "cells": len(set(keys)), **meta,
        })
        return journal

    @classmethod
    def resume(cls, path: os.PathLike | str, **meta: Any) -> "RunJournal":
        """Re-open an existing journal for appending (a ``--resume`` run)."""
        journal = cls(path, fresh=False)
        journal._write({"type": "resume-marker", **meta})
        return journal

    def record(self, event: str, key: str, **extra: Any) -> None:
        """Append one cell lifecycle record (durable before returning)."""
        self._write({"type": "cell", "event": event, "key": key, **extra})

    def _write(self, obj: dict) -> None:
        if self._fh is None:
            return
        try:
            self._fh.write(json.dumps(obj, sort_keys=True) + "\n")
            self._fh.flush()
            os.fsync(self._fh.fileno())
        except (OSError, ValueError):
            # A journal that cannot be written must not sink the run it
            # records; the run simply becomes non-resumable from here.
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@dataclass
class JournalState:
    """Replayed view of a journal file (what ``--resume`` consumes)."""

    path: str
    header: dict = field(default_factory=dict)
    #: spec key -> result hash, for every cell that reached ``done``
    #: (or was served from cache / verified on a previous resume).
    done: dict[str, str] = field(default_factory=dict)
    #: spec key -> last ``failed`` record (error, kind, attempts).
    failed: dict[str, dict] = field(default_factory=dict)
    #: keys with a ``started`` but no terminal record (in flight at crash).
    started: set = field(default_factory=set)
    records: int = 0
    #: undecodable lines skipped during replay (>=1 after a torn write).
    skipped_lines: int = 0
    #: ``done`` records seen again with the same hash (harmless).
    duplicate_done: int = 0
    #: keys whose repeated ``done`` hashes disagreed — excluded from
    #: ``done`` (re-run is the only safe answer).
    conflicting: set = field(default_factory=set)

    @property
    def grid_digest(self) -> Optional[str]:
        return self.header.get("grid_digest")

    @property
    def cells(self) -> int:
        return int(self.header.get("cells", 0))

    def check_digest(self, keys: Iterable[str]) -> None:
        """Hard-error unless ``keys`` matches the journaled grid."""
        current = grid_digest(keys)
        if self.grid_digest is None:
            raise ResumeError(
                f"journal {self.path} has no header (empty or truncated at "
                f"birth); cannot resume from it")
        if current != self.grid_digest:
            raise ResumeError(
                f"journal {self.path} was recorded for a different grid "
                f"(digest {self.grid_digest[:12]}.. != {current[:12]}..): "
                f"the matrix changed since the interrupted run — refusing "
                f"to resume; rerun without --resume")


def replay_journal(path: os.PathLike | str) -> JournalState:
    """Rebuild the resumable state from a journal file.

    Tolerates, by construction rather than by luck:

    * a **truncated final line** (crash mid-append) — skipped, counted;
    * **duplicate done records** (a cell settled twice across resumes)
      — idempotent when the hashes agree; conflicting hashes exclude
      the key from ``done`` so it re-runs;
    * corrupt interior lines — skipped and counted, never fatal.
    """
    path = Path(path)
    if not path.exists():
        raise ResumeError(f"journal {path} does not exist")
    state = JournalState(path=str(path))
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            stripped = line.strip()
            if not stripped:
                continue
            try:
                obj = json.loads(stripped)
            except ValueError:
                state.skipped_lines += 1
                continue
            if not isinstance(obj, dict):
                state.skipped_lines += 1
                continue
            state.records += 1
            kind = obj.get("type")
            if kind == "header" and not state.header:
                state.header = obj
                continue
            if kind != "cell":
                continue
            event, key = obj.get("event"), obj.get("key")
            if not isinstance(key, str) or not key:
                state.skipped_lines += 1
                continue
            if event == "started":
                state.started.add(key)
            elif event in ("done", "cached", "resumed"):
                new = obj.get("result_hash")
                if not isinstance(new, str):
                    state.skipped_lines += 1
                    continue
                old = state.done.get(key)
                if old is None:
                    if key not in state.conflicting:
                        state.done[key] = new
                elif old == new:
                    state.duplicate_done += 1
                else:
                    state.conflicting.add(key)
                    del state.done[key]
                state.started.discard(key)
                state.failed.pop(key, None)
            elif event == "failed":
                state.failed[key] = {
                    "error": obj.get("error", ""),
                    "kind": obj.get("kind", "error"),
                    "attempts": obj.get("attempts", 0),
                }
                state.started.discard(key)
    return state
