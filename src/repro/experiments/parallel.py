"""Parallel experiment engine with content-addressed result caching.

Every figure in the paper (Tables 1-4, Figs. 4-6) is a grid of
independent ``run_workload`` calls over (scenario x tick-mode x seed).
This module turns that grid into data — a list of :class:`RunSpec` — and
executes it:

* **fan-out** across a :class:`~concurrent.futures.ProcessPoolExecutor`
  (``jobs=N``); the simulator is deterministic per seed, so a run's
  result does not depend on which process executes it;
* **result cache** — each spec hashes to a stable content address
  (:func:`spec_key`); finished runs are stored as JSON under that key
  and re-running a benchmark only executes changed cells;
* **fault tolerance** — a per-run timeout (enforced *inside* the worker
  via ``SIGALRM``, so a stuck run cannot wedge the pool) and one
  automatic retry for raising/timing-out/crashing workers; what still
  fails lands in :attr:`GridResult.failed_specs` instead of sinking the
  rest of the grid;
* **progress** — an optional callback receives a
  :class:`ProgressEvent` per finished cell (the CLI prints these).

A :class:`RunSpec` is declarative: the workload is named by a
:class:`WorkloadSpec` (factory kind + keyword parameters) rather than a
live object, so specs are hashable, picklable and JSON-serializable.
Results round-trip through :meth:`RunMetrics.to_json_dict`; both the
serial and the pooled path return cache-decoded objects, so a cached
grid is bit-identical to a fresh one.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import multiprocessing
import os
import signal
import threading
import time
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path
from typing import Any, Callable, Iterable, Optional

from repro.config import HostFeatures, IoDeviceKind, MachineSpec, TickMode
from repro.errors import ReproError
from repro.host.perturb import perturbation_from_dict, perturbation_to_dict
from repro.metrics.perf import RunMetrics
from repro.metrics.report import Comparison, compare_runs

#: Bump when the spec encoding or result encoding changes shape —
#: invalidates every previously cached result.
CACHE_VERSION = 3

#: Default per-run wall-clock timeout (seconds of *real* time).
DEFAULT_TIMEOUT_S = 600.0

#: Default cache location; override with ``REPRO_CACHE_DIR`` or the
#: ``cache_dir`` argument. Kept repo-local (and git-ignored).
DEFAULT_CACHE_DIR = ".repro-cache"


class GridError(ReproError):
    """A grid could not produce the results a driver requires."""


class RunTimeout(ReproError):
    """A single run exceeded its per-run timeout."""


# --------------------------------------------------------------------------
# Workload registry
# --------------------------------------------------------------------------

#: kind -> factory(**params) -> Workload. Extend with
#: :func:`register_workload` (test fixtures and future workloads).
WORKLOAD_FACTORIES: dict[str, Callable[..., Any]] = {}


def register_workload(kind: str, factory: Callable[..., Any]) -> None:
    """Register (or replace) a workload factory under ``kind``."""
    WORKLOAD_FACTORIES[kind] = factory


def _register_defaults() -> None:
    from repro.workloads import fio, parsec
    from repro.workloads.micro import (
        IdlePeriodWorkload,
        IdleWorkload,
        PingPongWorkload,
        SyncStormWorkload,
    )
    from repro.workloads.netserve import NetServiceWorkload

    register_workload("parsec", parsec.benchmark)
    register_workload("fio", lambda category, block_size, total_bytes=32 << 20: fio.job(
        category, block_size, total_bytes=total_bytes))
    register_workload("micro.idle", IdleWorkload)
    register_workload("micro.syncstorm", SyncStormWorkload)
    register_workload("micro.idleperiod", lambda idle_ns, **kw: IdlePeriodWorkload(idle_ns, **kw))
    register_workload("micro.pingpong", PingPongWorkload)
    register_workload("netserve", NetServiceWorkload)


_register_defaults()

#: Special kind executed by :func:`repro.experiments.overcommit.run_idle_overcommit`
#: (a multi-VM scenario, not a single-VM Workload).
OVERCOMMIT_IDLE = "overcommit.idle"

#: Special kind executed by :func:`repro.fleet.hostsim.run_host` — one
#: host of a fleet (multi-VM, burst arrivals), sharded per host so a
#: rack fans out across the pool like any other grid.
FLEET_HOST = "fleet.host"


@dataclass(frozen=True)
class WorkloadSpec:
    """A workload named by factory kind + sorted keyword parameters."""

    kind: str
    #: Sorted (name, value) pairs; values must be JSON-scalar.
    params: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def make(cls, kind: str, **params: Any) -> "WorkloadSpec":
        return cls(kind, tuple(sorted(params.items())))

    def kwargs(self) -> dict[str, Any]:
        return dict(self.params)

    def build(self) -> Any:
        try:
            factory = WORKLOAD_FACTORIES[self.kind]
        except KeyError:
            raise GridError(
                f"unknown workload kind {self.kind!r}; know {sorted(WORKLOAD_FACTORIES)}"
            ) from None
        return factory(**self.kwargs())


# --------------------------------------------------------------------------
# RunSpec
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class RunSpec:
    """One cell of an experiment grid: workload + tick mode + seed + knobs.

    Mirrors :func:`repro.experiments.runner.run_workload`'s signature,
    but as pure data. ``cost_overrides`` are applied on top of
    :data:`~repro.host.costs.DEFAULT_COSTS`;
    ``keep_timer_on_idle_exit`` drives the §5.2.5 class-level policy
    knob (applied and restored around the run, worker-safe).
    """

    workload: WorkloadSpec
    tick_mode: TickMode = TickMode.TICKLESS
    seed: int = 0
    vcpus: Optional[int] = None
    pinned_cpus: Optional[tuple[int, ...]] = None
    machine: Optional[MachineSpec] = None
    features: HostFeatures = field(default_factory=HostFeatures)
    cost_overrides: tuple[tuple[str, int], ...] = ()
    tick_hz: int = 250
    noise: bool = True
    cpuidle: bool = False
    device_kind: Optional[IoDeviceKind] = None
    horizon_ns: Optional[int] = None
    label: Optional[str] = None
    keep_timer_on_idle_exit: bool = True
    #: Timed disturbances (:class:`repro.host.perturb.Perturbation`)
    #: installed against the VM before boot. Part of the cache key:
    #: the same run with a different schedule is a different cell.
    perturbations: tuple = ()
    #: Collect a virtual-perf profile (sampling profiler + latency
    #: histograms + steal) alongside the run. The profile is returned
    #: in :attr:`GridResult.artifacts` and cached content-addressed
    #: next to the result (``<key>.obs.json``). Ignored for the
    #: multi-VM ``overcommit.idle`` kind. Profiling never perturbs
    #: simulated time, so the RunMetrics are identical either way.
    profile: bool = False
    #: Collect the windowed in-sim time series (:mod:`repro.obs.series`)
    #: alongside the run; returned in :attr:`GridResult.series` and
    #: cached as ``<key>.series.json``. Like ``profile``, ignored for
    #: ``overcommit.idle`` and free of simulated-time side effects.
    #: Serialized into the cache key only when set, so every
    #: pre-existing spec keeps its exact content address.
    series: bool = False

    def with_(self, **changes: Any) -> "RunSpec":
        from dataclasses import replace

        return replace(self, **changes)

    def display_label(self) -> str:
        return self.label or f"{self.workload.kind}/{self.tick_mode.value}/s{self.seed}"


def spec_to_dict(spec: RunSpec) -> dict:
    """Canonical JSON-safe encoding of a spec (the cache-key input).

    ``series`` is emitted only when True: a False default must encode
    byte-identically to a pre-``series`` spec so existing cache keys —
    and the golden batteries pinned to them — stay valid.
    """
    out = {
        "workload": {"kind": spec.workload.kind, "params": spec.workload.kwargs()},
        "tick_mode": spec.tick_mode.value,
        "seed": spec.seed,
        "vcpus": spec.vcpus,
        "pinned_cpus": list(spec.pinned_cpus) if spec.pinned_cpus is not None else None,
        "machine": asdict(spec.machine) if spec.machine is not None else None,
        "features": asdict(spec.features),
        "cost_overrides": dict(spec.cost_overrides),
        "tick_hz": spec.tick_hz,
        "noise": spec.noise,
        "cpuidle": spec.cpuidle,
        "device_kind": spec.device_kind.value if spec.device_kind is not None else None,
        "horizon_ns": spec.horizon_ns,
        "label": spec.label,
        "keep_timer_on_idle_exit": spec.keep_timer_on_idle_exit,
        "profile": spec.profile,
        "perturbations": [perturbation_to_dict(p) for p in spec.perturbations],
    }
    if spec.series:
        out["series"] = True
    return out


def spec_from_dict(data: dict) -> RunSpec:
    """Inverse of :func:`spec_to_dict` (cache-file rehydration)."""
    return RunSpec(
        workload=WorkloadSpec.make(data["workload"]["kind"], **data["workload"]["params"]),
        tick_mode=TickMode(data["tick_mode"]),
        seed=int(data["seed"]),
        vcpus=data["vcpus"],
        pinned_cpus=tuple(data["pinned_cpus"]) if data["pinned_cpus"] is not None else None,
        machine=MachineSpec(**data["machine"]) if data["machine"] is not None else None,
        features=HostFeatures(**data["features"]),
        cost_overrides=tuple(sorted(data["cost_overrides"].items())),
        tick_hz=int(data["tick_hz"]),
        noise=bool(data["noise"]),
        cpuidle=bool(data["cpuidle"]),
        device_kind=IoDeviceKind(data["device_kind"]) if data["device_kind"] is not None else None,
        horizon_ns=data["horizon_ns"],
        label=data["label"],
        keep_timer_on_idle_exit=bool(data["keep_timer_on_idle_exit"]),
        profile=bool(data.get("profile", False)),
        series=bool(data.get("series", False)),
        perturbations=tuple(
            perturbation_from_dict(p) for p in data.get("perturbations", [])
        ),
    )


def spec_key(spec: RunSpec) -> str:
    """Stable content address of a spec (sha256 over canonical JSON).

    Any knob change — workload parameter, tick mode, seed, machine,
    features, costs — changes the key and therefore invalidates the
    cached cell; bumping :data:`CACHE_VERSION` invalidates everything.
    """
    payload = json.dumps({"v": CACHE_VERSION, "spec": spec_to_dict(spec)},
                         sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


# --------------------------------------------------------------------------
# Execution of one spec
# --------------------------------------------------------------------------

@contextlib.contextmanager
def _keep_timer(enabled: bool):
    from repro.core.paratick_guest import ParatickPolicy

    prev = ParatickPolicy.keep_timer_on_idle_exit
    ParatickPolicy.keep_timer_on_idle_exit = enabled
    try:
        yield
    finally:
        ParatickPolicy.keep_timer_on_idle_exit = prev


def execute_spec(spec: RunSpec):
    """Run one spec in-process and return its result object.

    Returns :class:`RunMetrics` for workload specs and
    :class:`~repro.experiments.overcommit.OvercommitResult` for
    ``overcommit.idle`` specs.
    """
    return execute_spec_full(spec)[0]


def execute_spec_obs(spec: RunSpec) -> tuple[Any, Optional[dict]]:
    """Like :func:`execute_spec`, plus the profile artifact.

    The second element is the :meth:`repro.obs.Observability.to_json_dict`
    payload when ``spec.profile`` is set (and the kind supports it),
    else None.
    """
    result, obs, _series = execute_spec_full(spec)
    return result, obs


def _obs_for(spec: RunSpec):
    """The :class:`~repro.obs.Observability` bundle a spec asks for.

    ``profile`` selects the full virtual-perf defaults; ``series``
    alone attaches only the :class:`~repro.obs.series.SeriesRecorder`
    (no profiler/latency/steal cost). None when the spec wants neither.
    """
    if not (spec.profile or spec.series):
        return None
    from repro.obs import ObsConfig, Observability

    if spec.profile:
        return Observability(ObsConfig(series=spec.series))
    return Observability(
        ObsConfig(profile=False, latency=False, steal=False, series=True)
    )


def execute_spec_full(spec: RunSpec) -> tuple[Any, Optional[dict], Optional[dict]]:
    """Run one spec, returning ``(result, obs_json, series_json)``.

    The second element is the profile artifact (``spec.profile``), the
    third the windowed in-sim time series (``spec.series``); each is
    None when not requested or the kind does not support it.
    """
    if spec.workload.kind == OVERCOMMIT_IDLE:
        from repro.experiments.overcommit import run_idle_overcommit

        result = run_idle_overcommit(
            spec.tick_mode, seed=spec.seed, **spec.workload.kwargs()
        )
        return result, None, None

    if spec.workload.kind == FLEET_HOST:
        from repro.fleet.hostsim import execute_fleet_spec

        return execute_fleet_spec(spec)

    from repro.experiments.runner import DEFAULT_HORIZON_NS, run_workload
    from repro.host.costs import DEFAULT_COSTS

    obs = _obs_for(spec)
    costs = DEFAULT_COSTS
    if spec.cost_overrides:
        costs = costs.with_overrides(**dict(spec.cost_overrides))
    with _keep_timer(spec.keep_timer_on_idle_exit):
        result = run_workload(
            spec.workload.build(),
            tick_mode=spec.tick_mode,
            vcpus=spec.vcpus,
            pinned_cpus=spec.pinned_cpus,
            machine_spec=spec.machine,
            features=spec.features,
            costs=costs,
            tick_hz=spec.tick_hz,
            seed=spec.seed,
            noise=spec.noise,
            cpuidle=spec.cpuidle,
            device_kind=spec.device_kind,
            horizon_ns=spec.horizon_ns if spec.horizon_ns is not None else DEFAULT_HORIZON_NS,
            label=spec.label,
            perturbations=spec.perturbations,
            obs=obs,
        )
    return (
        result,
        obs.to_json_dict() if spec.profile and obs is not None else None,
        obs.series_json() if spec.series and obs is not None else None,
    )


def encode_result(obj: Any) -> dict:
    """Encode a run result for the cache / the worker return channel."""
    from repro.experiments.overcommit import OvercommitResult

    if isinstance(obj, RunMetrics):
        return {"type": "run_metrics", "data": obj.to_json_dict()}
    if isinstance(obj, OvercommitResult):
        data = asdict(obj)
        data["mode"] = obj.mode.value
        return {"type": "overcommit", "data": data}
    raise GridError(f"cannot encode result of type {type(obj).__name__}")


def decode_result(encoded: dict) -> Any:
    """Inverse of :func:`encode_result`; raises on malformed input."""
    from repro.experiments.overcommit import OvercommitResult

    kind = encoded["type"]
    data = encoded["data"]
    if kind == "run_metrics":
        return RunMetrics.from_json_dict(data)
    if kind == "overcommit":
        data = dict(data)
        data["mode"] = TickMode(data["mode"])
        return OvercommitResult(**data)
    raise GridError(f"unknown cached result type {kind!r}")


@contextlib.contextmanager
def _alarm(seconds: Optional[float]):
    """Raise :class:`RunTimeout` after ``seconds`` of real time.

    SIGALRM-based, so it interrupts a compute-bound simulation; only
    armed in a main thread (worker processes always qualify).
    """
    if not seconds or threading.current_thread() is not threading.main_thread():
        yield
        return

    def _on_alarm(signum, frame):
        raise RunTimeout(f"run exceeded the per-run timeout of {seconds:g}s")

    prev = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, prev)


def _worker_run(spec: RunSpec, timeout_s: Optional[float]) -> dict:
    """Pool entry point: execute one spec under its timeout, encoded.

    A profile artifact (``spec.profile``) rides back in the ``"obs"``
    key of the encoded dict and a time series (``spec.series``) in
    ``"series"``; :func:`decode_result` ignores both and the grid
    driver strips them into :attr:`GridResult.artifacts` /
    :attr:`GridResult.series`. ``"wall_s"`` / ``"pid"`` carry the
    in-worker wall-clock and worker identity for harness telemetry
    (also stripped before the result is cached).
    """
    t0 = time.monotonic()
    with _alarm(timeout_s):
        result, obs, series = execute_spec_full(spec)
        encoded = encode_result(result)
        if obs is not None:
            encoded["obs"] = obs
        if series is not None:
            encoded["series"] = series
        encoded["wall_s"] = time.monotonic() - t0
        encoded["pid"] = os.getpid()
        return encoded


# --------------------------------------------------------------------------
# Result cache
# --------------------------------------------------------------------------

class ResultCache:
    """Content-addressed on-disk store of encoded run results.

    Layout: ``<root>/<key[:2]>/<key>.json``, one file per spec, written
    atomically (tmp + rename). A corrupted, truncated or stale-format
    file is discarded on read — never fatal.
    """

    def __init__(self, root: str | os.PathLike | None = None) -> None:
        self.root = Path(root or os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR))

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def artifact_path_for(self, key: str) -> Path:
        """Profile artifact sibling of :meth:`path_for` (same address)."""
        return self.root / key[:2] / f"{key}.obs.json"

    def series_path_for(self, key: str) -> Path:
        """Time-series artifact sibling (``<key>.series.json``)."""
        return self.root / key[:2] / f"{key}.series.json"

    def load(self, spec: RunSpec) -> Any | None:
        """Decoded result for ``spec``, or None on miss/corruption."""
        path = self.path_for(spec_key(spec))
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            self._discard(path)
            return None
        try:
            if payload["version"] != CACHE_VERSION:
                raise ValueError("cache version mismatch")
            return decode_result(payload["result"])
        except (KeyError, TypeError, ValueError, ReproError):
            self._discard(path)
            return None

    def store(self, spec: RunSpec, encoded: dict) -> Path:
        key = spec_key(spec)
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
        tmp.write_text(json.dumps(
            {"version": CACHE_VERSION, "key": key, "spec": spec_to_dict(spec),
             "result": encoded},
            sort_keys=True,
        ))
        os.replace(tmp, path)
        return path

    def load_artifact(self, spec: RunSpec) -> Optional[dict]:
        """Cached profile artifact for ``spec``, or None."""
        path = self.artifact_path_for(spec_key(spec))
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            self._discard(path)
            return None
        if not isinstance(payload, dict):
            self._discard(path)
            return None
        return payload

    def store_artifact(self, spec: RunSpec, obs: dict) -> Path:
        path = self.artifact_path_for(spec_key(spec))
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
        tmp.write_text(json.dumps(obs, sort_keys=True))
        os.replace(tmp, path)
        return path

    def load_series(self, spec: RunSpec) -> Optional[dict]:
        """Cached time-series artifact for ``spec``, or None."""
        path = self.series_path_for(spec_key(spec))
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            self._discard(path)
            return None
        if not isinstance(payload, dict):
            self._discard(path)
            return None
        return payload

    def store_series(self, spec: RunSpec, series: dict) -> Path:
        path = self.series_path_for(spec_key(spec))
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
        tmp.write_text(json.dumps(series, sort_keys=True))
        os.replace(tmp, path)
        return path

    @staticmethod
    def _discard(path: Path) -> None:
        with contextlib.suppress(OSError):
            path.unlink()


# --------------------------------------------------------------------------
# Grid execution
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class ProgressEvent:
    """One cell of the grid settled (from cache, a run, or failure)."""

    spec: RunSpec
    #: "cached" | "ran" | "retry" | "failed"
    status: str
    done: int
    total: int
    attempt: int = 1
    error: Optional[str] = None
    #: Wall-clock of *this attempt* in seconds: in-worker execution
    #: time for "ran", submit-to-settle (queue included) for
    #: "retry"/"failed", None for "cached" and for drivers predating
    #: the field.
    duration_s: Optional[float] = None
    #: True when the cell was served from the result cache.
    cache_hit: bool = False


@dataclass(frozen=True)
class FailedSpec:
    """A cell that failed every attempt; the grid continued without it."""

    spec: RunSpec
    error: str
    attempts: int


@dataclass
class GridResult:
    """Outcome of one grid execution (possibly partial)."""

    specs: list[RunSpec]
    results: dict[RunSpec, Any]
    failed_specs: list[FailedSpec] = field(default_factory=list)
    cache_hits: int = 0
    executed: int = 0
    #: Profile artifacts for specs run with ``profile=True``
    #: (the :meth:`repro.obs.Observability.to_json_dict` payload).
    artifacts: dict[RunSpec, dict] = field(default_factory=dict)
    #: Windowed in-sim time series for specs run with ``series=True``
    #: (the :meth:`repro.obs.Observability.series_json` payload).
    series: dict[RunSpec, dict] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        return not self.failed_specs

    def ordered(self) -> list[Any]:
        """Results aligned with the input spec order (None where failed)."""
        return [self.results.get(s) for s in self.specs]

    def __getitem__(self, spec: RunSpec) -> Any:
        try:
            return self.results[spec]
        except KeyError:
            raise GridError(f"no result for {spec.display_label()} "
                            f"(failed or not part of this grid)") from None

    def raise_if_failed(self) -> "GridResult":
        """For drivers that need the *full* grid (tables, aggregates)."""
        if self.failed_specs:
            names = ", ".join(f.spec.display_label() for f in self.failed_specs[:5])
            raise GridError(
                f"{len(self.failed_specs)} grid cell(s) failed (first: {names}); "
                f"last error: {self.failed_specs[-1].error}"
            )
        return self


def _pool_context():
    """Prefer fork: cheap on Linux, and workers inherit workload kinds
    registered by the calling process (tests rely on this)."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else methods[0])


def run_grid(
    specs: Iterable[RunSpec],
    *,
    jobs: Optional[int] = None,
    cache_dir: str | os.PathLike | None = None,
    use_cache: bool = True,
    timeout_s: Optional[float] = DEFAULT_TIMEOUT_S,
    retries: int = 1,
    progress: Optional[Callable[[ProgressEvent], None]] = None,
    telemetry=None,
) -> GridResult:
    """Execute a grid of specs, using the cache and ``jobs`` workers.

    ``jobs=None``/``0``/``1`` executes serially in-process (still using
    the cache); ``jobs=N`` fans out across N worker processes. Each
    failing cell (exception, timeout, worker crash) is retried
    ``retries`` times and then reported in
    :attr:`GridResult.failed_specs` — the rest of the grid completes
    regardless.

    ``telemetry`` (a :class:`repro.telemetry.HarnessTelemetry`) records
    wall-clock spans, cache instants and counters for every state
    transition. Every touch point is guarded by
    ``telemetry is not None and telemetry.enabled``, so a detached grid
    pays a single boolean check (the exploding-telemetry test pins
    this), and telemetry observes only harness wall-clock — results and
    cache contents are byte-identical with it on or off.

    A ``progress`` callback that raises is disabled after its first
    exception (with a :class:`RuntimeWarning`) instead of sinking the
    grid: observation must never abort the experiment.
    """
    tel = telemetry if (telemetry is not None and telemetry.enabled) else None
    spec_list = list(specs)
    unique: dict[RunSpec, None] = dict.fromkeys(spec_list)
    total = len(unique)
    cache = ResultCache(cache_dir) if use_cache else None
    result = GridResult(specs=spec_list, results={})
    done = 0

    grid_span = (
        tel.span("grid.run", cells=total, jobs=jobs or 1)
        if tel is not None else contextlib.nullcontext({})
    )

    def emit(spec: RunSpec, status: str, attempt: int = 1,
             error: str | None = None, duration_s: Optional[float] = None,
             cache_hit: bool = False) -> None:
        nonlocal progress
        if progress is None:
            return
        try:
            progress(ProgressEvent(spec, status, done, total, attempt, error,
                                   duration_s, cache_hit))
        except Exception as exc:
            warnings.warn(
                f"progress callback disabled after raising {exc!r}",
                RuntimeWarning, stacklevel=2,
            )
            progress = None

    def tel_settle(spec: RunSpec, status: str, duration_ns: Optional[int]) -> None:
        """One settled-cell record: counter + wall histogram."""
        assert tel is not None
        tel.counter("cells", help="grid cells settled by status", status=status)
        if duration_ns is not None:
            tel.observe("shard_wall_ns", duration_ns,
                        help="per-attempt shard wall-clock", status=status)

    with grid_span as grid_attrs:
        pending: list[RunSpec] = []
        for spec in unique:
            hit = cache.load(spec) if cache is not None else None
            art = cache.load_artifact(spec) if cache is not None and spec.profile else None
            ser = cache.load_series(spec) if cache is not None and spec.series else None
            if tel is not None and cache is not None:
                tel.instant("cache.probe", lane="cache", spec=spec.display_label())
            if hit is not None and (not spec.profile or art is not None) \
                    and (not spec.series or ser is not None):
                # A profiled (or series) spec only counts as a hit when
                # its artifacts are present too — a result without them
                # is a miss.
                result.results[spec] = hit
                if art is not None:
                    result.artifacts[spec] = art
                if ser is not None:
                    result.series[spec] = ser
                result.cache_hits += 1
                done += 1
                if tel is not None:
                    tel.instant("cache.hit", lane="cache", spec=spec.display_label())
                    tel.counter("cache_hits", help="grid cells served from cache")
                    tel_settle(spec, "cached", None)
                emit(spec, "cached", cache_hit=True)
            else:
                if tel is not None and cache is not None:
                    tel.instant("cache.miss", lane="cache", spec=spec.display_label())
                    tel.counter("cache_misses", help="grid cells not in cache")
                pending.append(spec)

        def settle_ok(spec: RunSpec, encoded: dict) -> None:
            nonlocal done, cache
            obs = encoded.pop("obs", None)
            series = encoded.pop("series", None)
            wall_s = encoded.pop("wall_s", None)
            pid = encoded.pop("pid", None)
            if obs is not None:
                result.artifacts[spec] = obs
            if series is not None:
                result.series[spec] = series
            result.results[spec] = decode_result(encoded)
            result.executed += 1
            if tel is not None and wall_s is not None:
                # Reconstruct the worker's execution as a slice on its
                # lane: it ended (approximately) now and lasted wall_s.
                wall_ns = int(wall_s * 1e9)
                end_ns = tel.now_ns()
                tel.add_span("shard.execute", end_ns - wall_ns, wall_ns,
                             lane=f"worker-{pid}", spec=spec.display_label())
                tel_settle(spec, "ran", wall_ns)
            if cache is not None:
                try:
                    cache.store(spec, encoded)
                    if obs is not None:
                        cache.store_artifact(spec, obs)
                    if series is not None:
                        cache.store_series(spec, series)
                    if tel is not None:
                        tel.instant("cache.write", lane="cache",
                                    spec=spec.display_label())
                        tel.counter("cache_writes", help="results written to cache")
                except OSError as exc:
                    # An unwritable store (bad cache_dir, full disk) must not
                    # sink a grid whose results are already in memory.
                    warnings.warn(
                        f"result cache disabled: cannot write {cache.root}: {exc}",
                        RuntimeWarning, stacklevel=2,
                    )
                    cache = None
            done += 1
            emit(spec, "ran", duration_s=wall_s)

        def settle_failed(spec: RunSpec, error: str, attempts: int,
                          duration_s: Optional[float] = None) -> None:
            nonlocal done
            result.failed_specs.append(FailedSpec(spec, error, attempts))
            done += 1
            if tel is not None:
                tel.instant("shard.failed", spec=spec.display_label(),
                            error=error, attempts=attempts)
                tel_settle(spec, "failed",
                           int(duration_s * 1e9) if duration_s is not None else None)
            emit(spec, "failed", attempts, error, duration_s)

        def note_retry(spec: RunSpec, attempt: int, error: str,
                       duration_s: Optional[float]) -> None:
            if tel is not None:
                tel.instant("shard.retry", spec=spec.display_label(),
                            error=error, attempt=attempt)
                tel_settle(spec, "retry",
                           int(duration_s * 1e9) if duration_s is not None else None)
            emit(spec, "retry", attempt, error, duration_s)

        if not pending:
            if tel is not None:
                grid_attrs.update(cache_hits=result.cache_hits, executed=0,
                                  failed=len(result.failed_specs))
            return result

        if not jobs or jobs <= 1:
            for spec in pending:
                attempt = 0
                while True:
                    attempt += 1
                    t0 = time.monotonic()
                    try:
                        settle_ok(spec, _worker_run(spec, timeout_s))
                        break
                    except Exception as exc:
                        elapsed = time.monotonic() - t0
                        if attempt > retries:
                            settle_failed(spec, repr(exc), attempt, elapsed)
                            break
                        note_retry(spec, attempt, repr(exc), elapsed)
            if tel is not None:
                grid_attrs.update(cache_hits=result.cache_hits,
                                  executed=result.executed,
                                  failed=len(result.failed_specs))
            return result

        ctx = _pool_context()
        attempts: dict[RunSpec, int] = {s: 1 for s in pending}
        pool = ProcessPoolExecutor(max_workers=jobs, mp_context=ctx)
        if tel is not None:
            tel.gauge("pool_workers", jobs, help="process pool size")
        submitted_at: dict[Any, float] = {}

        def submit(p, spec: RunSpec):
            fut = p.submit(_worker_run, spec, timeout_s)
            submitted_at[fut] = time.monotonic()
            return fut

        in_flight: dict[Any, RunSpec] = {submit(pool, spec): spec for spec in pending}
        try:
            while in_flight:
                finished, _ = wait(list(in_flight), return_when=FIRST_COMPLETED)
                pool_broken = False
                for fut in finished:
                    spec = in_flight.pop(fut)
                    elapsed = time.monotonic() - submitted_at.pop(fut, time.monotonic())
                    try:
                        encoded = fut.result()
                    except BrokenProcessPool as exc:
                        # The pool died (a worker crashed hard). Every
                        # in-flight future is lost: rebuild the pool and
                        # retry them all, charging each one attempt.
                        casualties = [spec] + list(in_flight.values())
                        in_flight.clear()
                        submitted_at.clear()
                        with contextlib.suppress(Exception):
                            pool.shutdown(wait=False, cancel_futures=True)
                        pool = ProcessPoolExecutor(max_workers=jobs, mp_context=ctx)
                        if tel is not None:
                            tel.instant("pool.rebuild", error=repr(exc),
                                        casualties=len(casualties))
                            tel.counter("pool_rebuilds",
                                        help="process pool crash recoveries")
                        for s in casualties:
                            if attempts[s] > retries:
                                settle_failed(s, repr(exc), attempts[s], elapsed)
                            else:
                                note_retry(s, attempts[s], repr(exc), elapsed)
                                attempts[s] += 1
                                in_flight[submit(pool, s)] = s
                        pool_broken = True
                    except Exception as exc:  # worker raised (incl. RunTimeout)
                        if attempts[spec] > retries:
                            settle_failed(spec, repr(exc), attempts[spec], elapsed)
                        else:
                            note_retry(spec, attempts[spec], repr(exc), elapsed)
                            attempts[spec] += 1
                            in_flight[submit(pool, spec)] = spec
                    else:
                        settle_ok(spec, encoded)
                    if pool_broken:
                        break  # `in_flight` was rebuilt wholesale; re-wait
        finally:
            with contextlib.suppress(Exception):
                pool.shutdown(wait=False, cancel_futures=True)
        if tel is not None:
            grid_attrs.update(cache_hits=result.cache_hits,
                              executed=result.executed,
                              failed=len(result.failed_specs))
        return result


def progress_reporter(stream=None):
    """A ``(stats, callback)`` pair for CLI-style grid drivers.

    ``callback`` prints one line per settled cell to ``stream`` (stderr
    by default) and tallies statuses in ``stats`` — drivers use the
    tally to report how much of a sweep was served from cache.
    """
    import collections
    import sys

    stats: collections.Counter[str] = collections.Counter()
    out = stream if stream is not None else sys.stderr

    def callback(event: ProgressEvent) -> None:
        stats[event.status] += 1
        detail = f" ({event.error})" if event.error else ""
        took = f" [{event.duration_s:.2f}s]" if event.duration_s is not None else ""
        print(f"[{event.done}/{event.total}] {event.status:<6} "
              f"{event.spec.display_label()}{took}{detail}", file=out)

    return stats, callback


# --------------------------------------------------------------------------
# A/B comparison helpers (the paper's measurement, grid-shaped)
# --------------------------------------------------------------------------

def ab_specs(
    workload: WorkloadSpec,
    *,
    baseline: TickMode = TickMode.TICKLESS,
    candidate: TickMode = TickMode.PARATICK,
    seed: int = 0,
    label: Optional[str] = None,
    **knobs: Any,
) -> tuple[RunSpec, RunSpec]:
    """The paper's A/B pair: same workload/seed/knobs, two tick modes."""
    stem = label or workload.kind
    base = RunSpec(workload=workload, tick_mode=baseline, seed=seed,
                   label=f"{stem}/{baseline.value}", **knobs)
    cand = base.with_(tick_mode=candidate, label=f"{stem}/{candidate.value}")
    return base, cand


def compare_from_grid(
    grid: GridResult, base: RunSpec, cand: RunSpec, label: str
) -> Comparison:
    """Build one paper-style comparison row out of a finished grid."""
    return compare_runs(grid[base], grid[cand], label)


def cost_overrides_from(costs: Any) -> tuple[tuple[str, int], ...]:
    """Diff a :class:`CostModel` against the defaults, as spec overrides."""
    from repro.host.costs import DEFAULT_COSTS

    out = []
    for f in fields(costs):
        value = getattr(costs, f.name)
        if value != getattr(DEFAULT_COSTS, f.name):
            out.append((f.name, value))
    return tuple(sorted(out))


def spec_for(
    workload: Any,
    *,
    tick_mode: TickMode,
    seed: int = 0,
    label: Optional[str] = None,
    **run_kwargs: Any,
) -> RunSpec:
    """Translate a ``run_workload``-style call into a :class:`RunSpec`.

    ``workload`` may be a :class:`WorkloadSpec` or a live workload
    object (reverse-mapped via :func:`describe_workload`); the remaining
    keywords mirror :func:`~repro.experiments.runner.run_workload`.
    Raises :class:`GridError` for anything the engine cannot express
    (an unknown workload type, a live ``tracer``).
    """
    ws = workload if isinstance(workload, WorkloadSpec) else describe_workload(workload)
    if run_kwargs.get("tracer") is not None:
        raise GridError("a live tracer cannot cross the worker boundary")
    run_kwargs.pop("tracer", None)
    machine = run_kwargs.pop("machine_spec", None)
    costs = run_kwargs.pop("costs", None)
    overrides = cost_overrides_from(costs) if costs is not None else ()
    return RunSpec(workload=ws, tick_mode=tick_mode, seed=seed, machine=machine,
                   cost_overrides=overrides, label=label, **run_kwargs)


def describe_workload(workload: Any) -> WorkloadSpec:
    """Reverse-map a live workload object to its declarative spec.

    Covers every in-tree workload class; raises :class:`GridError` for
    unknown types (callers fall back to serial in-process execution).
    """
    from repro.hw.nic import DATACENTER_10G
    from repro.workloads.fio import FioWorkload
    from repro.workloads.micro import (
        IdlePeriodWorkload,
        IdleWorkload,
        PingPongWorkload,
        SyncStormWorkload,
    )
    from repro.workloads.netserve import NetServiceWorkload
    from repro.workloads.parsec import ParsecWorkload

    if isinstance(workload, ParsecWorkload):
        return WorkloadSpec.make(
            "parsec", name=workload.profile.name, threads=workload.threads,
            target_cycles=workload.target_cycles,
        )
    if isinstance(workload, FioWorkload):
        return WorkloadSpec.make(
            "fio", category=workload.job.category, block_size=workload.job.block_size,
            total_bytes=workload.total_bytes,
        )
    if isinstance(workload, IdleWorkload):
        return WorkloadSpec.make("micro.idle", vcpus=workload.vcpus)
    if isinstance(workload, SyncStormWorkload):
        return WorkloadSpec.make(
            "micro.syncstorm", threads=workload.threads,
            events_per_second=workload.events_per_second,
            duration_cycles=workload.duration_cycles,
        )
    if isinstance(workload, IdlePeriodWorkload):
        return WorkloadSpec.make(
            "micro.idleperiod", idle_ns=workload.idle_ns,
            iterations=workload.iterations, work_cycles=workload.work_cycles,
        )
    if isinstance(workload, PingPongWorkload):
        return WorkloadSpec.make(
            "micro.pingpong", rounds=workload.rounds,
            work_cycles=workload.work_cycles, same_vcpu=workload.same_vcpu,
        )
    if isinstance(workload, NetServiceWorkload) and workload.profile is DATACENTER_10G:
        return WorkloadSpec.make(
            "netserve", workers=workload.workers, requests=workload.requests,
            request_bytes=workload.request_bytes, think_cycles=workload.think_cycles,
        )
    raise GridError(f"cannot describe workload {type(workload).__name__} as a spec")
