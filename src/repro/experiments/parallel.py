"""Parallel experiment engine with content-addressed result caching.

Every figure in the paper (Tables 1-4, Figs. 4-6) is a grid of
independent ``run_workload`` calls over (scenario x tick-mode x seed).
This module turns that grid into data — a list of :class:`RunSpec` — and
executes it:

* **fan-out** across a :class:`~concurrent.futures.ProcessPoolExecutor`
  (``jobs=N``); the simulator is deterministic per seed, so a run's
  result does not depend on which process executes it;
* **result cache** — each spec hashes to a stable content address
  (:func:`spec_key`); finished runs are stored as JSON under that key
  and re-running a benchmark only executes changed cells;
* **fault tolerance** — a per-run timeout (enforced *inside* the worker
  via ``SIGALRM``, so a stuck run cannot wedge the pool) and automatic
  retries (with the :class:`~repro.resilience.policy.RetryPolicy`
  backoff ladder) for raising/timing-out/crashing workers; what still
  fails lands in :attr:`GridResult.failed_specs` — classified as
  ``timeout`` / ``crash`` / ``error`` — instead of sinking the rest of
  the grid. Pool rebuilds after worker crashes are capped, and a
  failure-rate circuit breaker shrinks the pool and falls back to
  serial before giving up (:mod:`repro.resilience.policy`);
* **crash safety** — an optional append-only run *journal*
  (:mod:`repro.resilience.journal`) records every cell's lifecycle;
  ``resume=`` replays it, skipping completed cells after re-verifying
  their cached bytes against the journaled result hash. Cache files
  carry checksum footers; corrupt entries are quarantined (demoted to
  miss, never fatal) by :mod:`repro.resilience.integrity`;
* **chaos** — a :class:`~repro.resilience.chaos.ChaosPolicy` injects
  deterministic faults (worker SIGKILL, delays, simulated harness
  crash, filesystem failures via the injectable ``cache_fs`` shim) so
  every recovery path above is exercised in tests;
* **progress** — an optional callback receives a
  :class:`ProgressEvent` per finished cell (the CLI prints these), and
  every grid returns a structured
  :class:`~repro.resilience.policy.RunReport`
  (completed / degraded / failed) in :attr:`GridResult.report`.

A :class:`RunSpec` is declarative: the workload is named by a
:class:`WorkloadSpec` (factory kind + keyword parameters) rather than a
live object, so specs are hashable, picklable and JSON-serializable.
Results round-trip through :meth:`RunMetrics.to_json_dict`; both the
serial and the pooled path return cache-decoded objects, so a cached
grid is bit-identical to a fresh one.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import multiprocessing
import os
import signal
import threading
import time
import warnings
from collections import Counter
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path
from typing import Any, Callable, Iterable, Optional

from repro.config import HostFeatures, IoDeviceKind, MachineSpec, TickMode
from repro.errors import ReproError
from repro.host.perturb import perturbation_from_dict, perturbation_to_dict
from repro.metrics.perf import RunMetrics
from repro.metrics.report import Comparison, compare_runs
from repro.resilience.chaos import ChaosAbort
from repro.resilience.integrity import CacheFS, attach_footer, quarantine_file, split_verified
from repro.resilience.journal import JournalState, RunJournal, replay_journal, result_hash
from repro.resilience.policy import CircuitBreaker, RetryPolicy, RunReport, classify_failure

#: Bump when the spec encoding or result encoding changes shape —
#: invalidates every previously cached result.
CACHE_VERSION = 3

#: Default per-run wall-clock timeout (seconds of *real* time).
DEFAULT_TIMEOUT_S = 600.0

#: Default cache location; override with ``REPRO_CACHE_DIR`` or the
#: ``cache_dir`` argument. Kept repo-local (and git-ignored).
DEFAULT_CACHE_DIR = ".repro-cache"

#: A worker crash costs the whole pool; rebuilding forever against a
#: deterministic crasher is an outage, not resilience. After this many
#: rebuilds the remaining cells fail with a clear error instead.
DEFAULT_MAX_POOL_REBUILDS = 3


class GridError(ReproError):
    """A grid could not produce the results a driver requires."""


class RunTimeout(ReproError):
    """A single run exceeded its per-run timeout."""


# --------------------------------------------------------------------------
# Workload registry
# --------------------------------------------------------------------------

#: kind -> factory(**params) -> Workload. Extend with
#: :func:`register_workload` (test fixtures and future workloads).
WORKLOAD_FACTORIES: dict[str, Callable[..., Any]] = {}


def register_workload(kind: str, factory: Callable[..., Any]) -> None:
    """Register (or replace) a workload factory under ``kind``."""
    WORKLOAD_FACTORIES[kind] = factory


def _register_defaults() -> None:
    from repro.workloads import fio, parsec
    from repro.workloads.micro import (
        IdlePeriodWorkload,
        IdleWorkload,
        PingPongWorkload,
        SyncStormWorkload,
    )
    from repro.workloads.netserve import NetServiceWorkload

    register_workload("parsec", parsec.benchmark)
    register_workload("fio", lambda category, block_size, total_bytes=32 << 20: fio.job(
        category, block_size, total_bytes=total_bytes))
    register_workload("micro.idle", IdleWorkload)
    register_workload("micro.syncstorm", SyncStormWorkload)
    register_workload("micro.idleperiod", lambda idle_ns, **kw: IdlePeriodWorkload(idle_ns, **kw))
    register_workload("micro.pingpong", PingPongWorkload)
    register_workload("netserve", NetServiceWorkload)


_register_defaults()

#: Special kind executed by :func:`repro.experiments.overcommit.run_idle_overcommit`
#: (a multi-VM scenario, not a single-VM Workload).
OVERCOMMIT_IDLE = "overcommit.idle"

#: Special kind executed by :func:`repro.fleet.hostsim.run_host` — one
#: host of a fleet (multi-VM, burst arrivals), sharded per host so a
#: rack fans out across the pool like any other grid.
FLEET_HOST = "fleet.host"


@dataclass(frozen=True)
class WorkloadSpec:
    """A workload named by factory kind + sorted keyword parameters."""

    kind: str
    #: Sorted (name, value) pairs; values must be JSON-scalar.
    params: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def make(cls, kind: str, **params: Any) -> "WorkloadSpec":
        return cls(kind, tuple(sorted(params.items())))

    def kwargs(self) -> dict[str, Any]:
        return dict(self.params)

    def build(self) -> Any:
        try:
            factory = WORKLOAD_FACTORIES[self.kind]
        except KeyError:
            raise GridError(
                f"unknown workload kind {self.kind!r}; know {sorted(WORKLOAD_FACTORIES)}"
            ) from None
        return factory(**self.kwargs())


# --------------------------------------------------------------------------
# RunSpec
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class RunSpec:
    """One cell of an experiment grid: workload + tick mode + seed + knobs.

    Mirrors :func:`repro.experiments.runner.run_workload`'s signature,
    but as pure data. ``cost_overrides`` are applied on top of
    :data:`~repro.host.costs.DEFAULT_COSTS`;
    ``keep_timer_on_idle_exit`` drives the §5.2.5 class-level policy
    knob (applied and restored around the run, worker-safe).
    """

    workload: WorkloadSpec
    tick_mode: TickMode = TickMode.TICKLESS
    seed: int = 0
    vcpus: Optional[int] = None
    pinned_cpus: Optional[tuple[int, ...]] = None
    machine: Optional[MachineSpec] = None
    features: HostFeatures = field(default_factory=HostFeatures)
    cost_overrides: tuple[tuple[str, int], ...] = ()
    tick_hz: int = 250
    noise: bool = True
    cpuidle: bool = False
    device_kind: Optional[IoDeviceKind] = None
    horizon_ns: Optional[int] = None
    label: Optional[str] = None
    keep_timer_on_idle_exit: bool = True
    #: Timed disturbances (:class:`repro.host.perturb.Perturbation`)
    #: installed against the VM before boot. Part of the cache key:
    #: the same run with a different schedule is a different cell.
    perturbations: tuple = ()
    #: Collect a virtual-perf profile (sampling profiler + latency
    #: histograms + steal) alongside the run. The profile is returned
    #: in :attr:`GridResult.artifacts` and cached content-addressed
    #: next to the result (``<key>.obs.json``). Ignored for the
    #: multi-VM ``overcommit.idle`` kind. Profiling never perturbs
    #: simulated time, so the RunMetrics are identical either way.
    profile: bool = False
    #: Collect the windowed in-sim time series (:mod:`repro.obs.series`)
    #: alongside the run; returned in :attr:`GridResult.series` and
    #: cached as ``<key>.series.json``. Like ``profile``, ignored for
    #: ``overcommit.idle`` and free of simulated-time side effects.
    #: Serialized into the cache key only when set, so every
    #: pre-existing spec keeps its exact content address.
    series: bool = False
    #: Timer architecture to simulate (see :mod:`repro.hw.timerhw`).
    #: Rides the cache key, but — like ``series`` — is emitted only
    #: when non-default so pre-existing x86 content addresses survive.
    arch: str = "x86"

    def with_(self, **changes: Any) -> "RunSpec":
        from dataclasses import replace

        return replace(self, **changes)

    def display_label(self) -> str:
        return self.label or f"{self.workload.kind}/{self.tick_mode.value}/s{self.seed}"


def spec_to_dict(spec: RunSpec) -> dict:
    """Canonical JSON-safe encoding of a spec (the cache-key input).

    ``series`` is emitted only when True: a False default must encode
    byte-identically to a pre-``series`` spec so existing cache keys —
    and the golden batteries pinned to them — stay valid.
    """
    out = {
        "workload": {"kind": spec.workload.kind, "params": spec.workload.kwargs()},
        "tick_mode": spec.tick_mode.value,
        "seed": spec.seed,
        "vcpus": spec.vcpus,
        "pinned_cpus": list(spec.pinned_cpus) if spec.pinned_cpus is not None else None,
        "machine": asdict(spec.machine) if spec.machine is not None else None,
        "features": asdict(spec.features),
        "cost_overrides": dict(spec.cost_overrides),
        "tick_hz": spec.tick_hz,
        "noise": spec.noise,
        "cpuidle": spec.cpuidle,
        "device_kind": spec.device_kind.value if spec.device_kind is not None else None,
        "horizon_ns": spec.horizon_ns,
        "label": spec.label,
        "keep_timer_on_idle_exit": spec.keep_timer_on_idle_exit,
        "profile": spec.profile,
        "perturbations": [perturbation_to_dict(p) for p in spec.perturbations],
    }
    if spec.series:
        out["series"] = True
    if spec.arch != "x86":
        out["arch"] = spec.arch
    return out


def spec_from_dict(data: dict) -> RunSpec:
    """Inverse of :func:`spec_to_dict` (cache-file rehydration)."""
    return RunSpec(
        workload=WorkloadSpec.make(data["workload"]["kind"], **data["workload"]["params"]),
        tick_mode=TickMode(data["tick_mode"]),
        seed=int(data["seed"]),
        vcpus=data["vcpus"],
        pinned_cpus=tuple(data["pinned_cpus"]) if data["pinned_cpus"] is not None else None,
        machine=MachineSpec(**data["machine"]) if data["machine"] is not None else None,
        features=HostFeatures(**data["features"]),
        cost_overrides=tuple(sorted(data["cost_overrides"].items())),
        tick_hz=int(data["tick_hz"]),
        noise=bool(data["noise"]),
        cpuidle=bool(data["cpuidle"]),
        device_kind=IoDeviceKind(data["device_kind"]) if data["device_kind"] is not None else None,
        horizon_ns=data["horizon_ns"],
        label=data["label"],
        keep_timer_on_idle_exit=bool(data["keep_timer_on_idle_exit"]),
        profile=bool(data.get("profile", False)),
        series=bool(data.get("series", False)),
        arch=data.get("arch", "x86"),
        perturbations=tuple(
            perturbation_from_dict(p) for p in data.get("perturbations", [])
        ),
    )


def spec_key(spec: RunSpec) -> str:
    """Stable content address of a spec (sha256 over canonical JSON).

    Any knob change — workload parameter, tick mode, seed, machine,
    features, costs — changes the key and therefore invalidates the
    cached cell; bumping :data:`CACHE_VERSION` invalidates everything.
    """
    payload = json.dumps({"v": CACHE_VERSION, "spec": spec_to_dict(spec)},
                         sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


# --------------------------------------------------------------------------
# Execution of one spec
# --------------------------------------------------------------------------

@contextlib.contextmanager
def _keep_timer(enabled: bool):
    from repro.core.paratick_guest import ParatickPolicy

    prev = ParatickPolicy.keep_timer_on_idle_exit
    ParatickPolicy.keep_timer_on_idle_exit = enabled
    try:
        yield
    finally:
        ParatickPolicy.keep_timer_on_idle_exit = prev


def execute_spec(spec: RunSpec):
    """Run one spec in-process and return its result object.

    Returns :class:`RunMetrics` for workload specs and
    :class:`~repro.experiments.overcommit.OvercommitResult` for
    ``overcommit.idle`` specs.
    """
    return execute_spec_full(spec)[0]


def execute_spec_obs(spec: RunSpec) -> tuple[Any, Optional[dict]]:
    """Like :func:`execute_spec`, plus the profile artifact.

    The second element is the :meth:`repro.obs.Observability.to_json_dict`
    payload when ``spec.profile`` is set (and the kind supports it),
    else None.
    """
    result, obs, _series = execute_spec_full(spec)
    return result, obs


def _obs_for(spec: RunSpec):
    """The :class:`~repro.obs.Observability` bundle a spec asks for.

    ``profile`` selects the full virtual-perf defaults; ``series``
    alone attaches only the :class:`~repro.obs.series.SeriesRecorder`
    (no profiler/latency/steal cost). None when the spec wants neither.
    """
    if not (spec.profile or spec.series):
        return None
    from repro.obs import ObsConfig, Observability

    if spec.profile:
        return Observability(ObsConfig(series=spec.series))
    return Observability(
        ObsConfig(profile=False, latency=False, steal=False, series=True)
    )


def execute_spec_full(spec: RunSpec) -> tuple[Any, Optional[dict], Optional[dict]]:
    """Run one spec, returning ``(result, obs_json, series_json)``.

    The second element is the profile artifact (``spec.profile``), the
    third the windowed in-sim time series (``spec.series``); each is
    None when not requested or the kind does not support it.
    """
    if spec.workload.kind == OVERCOMMIT_IDLE:
        from repro.experiments.overcommit import run_idle_overcommit

        result = run_idle_overcommit(
            spec.tick_mode, seed=spec.seed, arch=spec.arch, **spec.workload.kwargs()
        )
        return result, None, None

    if spec.workload.kind == FLEET_HOST:
        from repro.fleet.hostsim import execute_fleet_spec

        return execute_fleet_spec(spec)

    from repro.experiments.runner import DEFAULT_HORIZON_NS, run_workload
    from repro.host.costs import DEFAULT_COSTS

    obs = _obs_for(spec)
    costs = DEFAULT_COSTS
    if spec.cost_overrides:
        costs = costs.with_overrides(**dict(spec.cost_overrides))
    with _keep_timer(spec.keep_timer_on_idle_exit):
        result = run_workload(
            spec.workload.build(),
            tick_mode=spec.tick_mode,
            vcpus=spec.vcpus,
            pinned_cpus=spec.pinned_cpus,
            machine_spec=spec.machine,
            features=spec.features,
            costs=costs,
            tick_hz=spec.tick_hz,
            seed=spec.seed,
            noise=spec.noise,
            cpuidle=spec.cpuidle,
            device_kind=spec.device_kind,
            horizon_ns=spec.horizon_ns if spec.horizon_ns is not None else DEFAULT_HORIZON_NS,
            label=spec.label,
            perturbations=spec.perturbations,
            arch=spec.arch,
            obs=obs,
        )
    return (
        result,
        obs.to_json_dict() if spec.profile and obs is not None else None,
        obs.series_json() if spec.series and obs is not None else None,
    )


def encode_result(obj: Any) -> dict:
    """Encode a run result for the cache / the worker return channel."""
    from repro.experiments.overcommit import OvercommitResult

    if isinstance(obj, RunMetrics):
        return {"type": "run_metrics", "data": obj.to_json_dict()}
    if isinstance(obj, OvercommitResult):
        data = asdict(obj)
        data["mode"] = obj.mode.value
        return {"type": "overcommit", "data": data}
    raise GridError(f"cannot encode result of type {type(obj).__name__}")


def decode_result(encoded: dict) -> Any:
    """Inverse of :func:`encode_result`; raises on malformed input."""
    from repro.experiments.overcommit import OvercommitResult

    kind = encoded["type"]
    data = encoded["data"]
    if kind == "run_metrics":
        return RunMetrics.from_json_dict(data)
    if kind == "overcommit":
        data = dict(data)
        data["mode"] = TickMode(data["mode"])
        return OvercommitResult(**data)
    raise GridError(f"unknown cached result type {kind!r}")


@contextlib.contextmanager
def _alarm(seconds: Optional[float]):
    """Raise :class:`RunTimeout` after ``seconds`` of real time.

    SIGALRM-based, so it interrupts a compute-bound simulation; only
    armed in a main thread (worker processes always qualify).
    """
    if not seconds or threading.current_thread() is not threading.main_thread():
        yield
        return

    def _on_alarm(signum, frame):
        raise RunTimeout(f"run exceeded the per-run timeout of {seconds:g}s")

    prev = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, prev)


def _worker_run(spec: RunSpec, timeout_s: Optional[float], chaos=None) -> dict:
    """Pool entry point: execute one spec under its timeout, encoded.

    A profile artifact (``spec.profile``) rides back in the ``"obs"``
    key of the encoded dict and a time series (``spec.series``) in
    ``"series"``; :func:`decode_result` ignores both and the grid
    driver strips them into :attr:`GridResult.artifacts` /
    :attr:`GridResult.series`. ``"wall_s"`` / ``"pid"`` carry the
    in-worker wall-clock and worker identity for harness telemetry
    (also stripped before the result is cached).

    ``chaos`` (a :class:`~repro.resilience.chaos.ChaosPolicy`) is
    consulted before execution: it may delay this cell past its
    timeout or SIGKILL the worker — inside the alarm scope, so an
    injected delay fails exactly like a genuinely stuck run.
    """
    t0 = time.monotonic()
    with _alarm(timeout_s):
        if chaos is not None:
            chaos.maybe_injure(spec_key(spec))
        result, obs, series = execute_spec_full(spec)
        encoded = encode_result(result)
        if obs is not None:
            encoded["obs"] = obs
        if series is not None:
            encoded["series"] = series
        encoded["wall_s"] = time.monotonic() - t0
        encoded["pid"] = os.getpid()
        return encoded


# --------------------------------------------------------------------------
# Result cache
# --------------------------------------------------------------------------

class ResultCache:
    """Content-addressed on-disk store of encoded run results.

    Layout: ``<root>/<key[:2]>/<key>.json``, one file per spec, written
    atomically (tmp + rename) with a checksum footer
    (:func:`repro.resilience.integrity.attach_footer`). On read the
    footer is verified: a corrupt file is moved to the cache's
    ``quarantine/`` directory and treated as a miss — never fatal, and
    never silently trusted. A footer-less ("legacy") file that still
    parses stays readable. Structurally stale entries (old
    ``CACHE_VERSION``, wrong shape) are plain-discarded as before —
    staleness is not corruption.

    Multi-file entries (result + profile/series artifacts) go through
    :meth:`store_entry`, which stages the whole set in a temp directory
    and publishes the result file *last* — an interruption leaves
    either a complete entry or a cold miss, never a result whose
    artifacts are missing.

    All filesystem traffic goes through an injectable
    :class:`~repro.resilience.integrity.CacheFS` shim so the chaos
    harness can fail chosen writes deterministically.
    """

    def __init__(self, root: str | os.PathLike | None = None, *,
                 fs: Optional[CacheFS] = None,
                 on_quarantine: Optional[Callable[[Path, Optional[Path]], None]] = None,
                 ) -> None:
        self.root = Path(root or os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR))
        self.fs = fs or CacheFS()
        self.on_quarantine = on_quarantine

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def artifact_path_for(self, key: str) -> Path:
        """Profile artifact sibling of :meth:`path_for` (same address)."""
        return self.root / key[:2] / f"{key}.obs.json"

    def series_path_for(self, key: str) -> Path:
        """Time-series artifact sibling (``<key>.series.json``)."""
        return self.root / key[:2] / f"{key}.series.json"

    def _read_json(self, path: Path) -> Any | None:
        """Footer-verified JSON payload of ``path``, or None.

        Missing file → miss. Corrupt bytes (failed checksum, or a
        legacy file that does not parse) → quarantine + miss. A legacy
        footer-less file that parses is served as-is.
        """
        try:
            text = self.fs.read_text(path)
        except FileNotFoundError:
            return None
        except OSError:
            self._quarantine(path)
            return None
        body, status = split_verified(text)
        if status == "corrupt":
            self._quarantine(path)
            return None
        try:
            return json.loads(body if body is not None else text)
        except ValueError:
            self._quarantine(path)
            return None

    def load(self, spec: RunSpec) -> Any | None:
        """Decoded result for ``spec``, or None on miss/corruption."""
        path = self.path_for(spec_key(spec))
        payload = self._read_json(path)
        if payload is None:
            return None
        try:
            if payload["version"] != CACHE_VERSION:
                raise ValueError("cache version mismatch")
            return decode_result(payload["result"])
        except (KeyError, TypeError, ValueError, ReproError):
            self._discard(path)
            return None

    def _result_body(self, spec: RunSpec, encoded: dict, key: str) -> str:
        return json.dumps(
            {"version": CACHE_VERSION, "key": key, "spec": spec_to_dict(spec),
             "result": encoded},
            sort_keys=True,
        )

    def _write_atomic(self, path: Path, body: str) -> Path:
        """Publish ``attach_footer(body)`` at ``path`` via tmp + rename."""
        self.fs.mkdir(path.parent)
        tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
        try:
            self.fs.write_text(tmp, attach_footer(body))
            self.fs.replace(tmp, path)
        except OSError:
            self.fs.unlink(tmp)
            raise
        return path

    def store(self, spec: RunSpec, encoded: dict) -> Path:
        key = spec_key(spec)
        return self._write_atomic(self.path_for(key),
                                  self._result_body(spec, encoded, key))

    def store_entry(self, spec: RunSpec, encoded: dict, *,
                    obs: Optional[dict] = None,
                    series: Optional[dict] = None) -> Path:
        """Store a result plus its artifacts as one atomic unit.

        Everything is staged in a throwaway directory first, then
        renamed into place with the result file **last** — the cache's
        hit predicate requires a profiled/series entry's artifacts to
        be present, so any interruption before the final rename reads
        as a cold miss, not a torn entry.
        """
        key = spec_key(spec)
        result_path = self.path_for(key)
        plan: list[tuple[Path, str]] = []
        if obs is not None:
            plan.append((self.artifact_path_for(key), json.dumps(obs, sort_keys=True)))
        if series is not None:
            plan.append((self.series_path_for(key), json.dumps(series, sort_keys=True)))
        plan.append((result_path, self._result_body(spec, encoded, key)))
        if len(plan) == 1:
            return self._write_atomic(result_path, plan[0][1])
        stage = result_path.parent / f".stage-{os.getpid()}-{key[:8]}"
        self.fs.mkdir(stage)
        staged: list[tuple[Path, Path]] = []
        try:
            for path, body in plan:
                tmp = stage / path.name
                self.fs.write_text(tmp, attach_footer(body))
                staged.append((tmp, path))
            for tmp, path in staged:  # result file is last in `plan`
                self.fs.replace(tmp, path)
        finally:
            for tmp, _ in staged:
                self.fs.unlink(tmp)
            with contextlib.suppress(OSError):
                stage.rmdir()
        return result_path

    def load_artifact(self, spec: RunSpec) -> Optional[dict]:
        """Cached profile artifact for ``spec``, or None."""
        path = self.artifact_path_for(spec_key(spec))
        payload = self._read_json(path)
        if payload is None:
            return None
        if not isinstance(payload, dict):
            self._discard(path)
            return None
        return payload

    def store_artifact(self, spec: RunSpec, obs: dict) -> Path:
        return self._write_atomic(self.artifact_path_for(spec_key(spec)),
                                  json.dumps(obs, sort_keys=True))

    def load_series(self, spec: RunSpec) -> Optional[dict]:
        """Cached time-series artifact for ``spec``, or None."""
        path = self.series_path_for(spec_key(spec))
        payload = self._read_json(path)
        if payload is None:
            return None
        if not isinstance(payload, dict):
            self._discard(path)
            return None
        return payload

    def store_series(self, spec: RunSpec, series: dict) -> Path:
        return self._write_atomic(self.series_path_for(spec_key(spec)),
                                  json.dumps(series, sort_keys=True))

    def quarantine_entry(self, key: str) -> int:
        """Quarantine every file of entry ``key`` (result + artifacts).

        Used when an entry's *content* is suspect as a unit — e.g. a
        resume re-verification hash mismatch — not just one file's
        bytes. Returns how many files were moved.
        """
        moved = 0
        for path in (self.path_for(key), self.artifact_path_for(key),
                     self.series_path_for(key)):
            if path.exists():
                self._quarantine(path)
                moved += 1
        return moved

    def _quarantine(self, path: Path) -> None:
        target = quarantine_file(self.root, path, self.fs)
        if self.on_quarantine is not None:
            with contextlib.suppress(Exception):
                self.on_quarantine(path, target)

    def _discard(self, path: Path) -> None:
        self.fs.unlink(path)


# --------------------------------------------------------------------------
# Grid execution
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class ProgressEvent:
    """One cell of the grid settled (from cache, a run, or failure)."""

    spec: RunSpec
    #: "cached" | "resumed" | "ran" | "retry" | "failed"
    status: str
    done: int
    total: int
    attempt: int = 1
    error: Optional[str] = None
    #: Wall-clock of *this attempt* in seconds: in-worker execution
    #: time for "ran", submit-to-settle (queue included) for
    #: "retry"/"failed", None for "cached" and for drivers predating
    #: the field.
    duration_s: Optional[float] = None
    #: True when the cell was served from the result cache.
    cache_hit: bool = False
    #: For "retry"/"failed": "timeout" | "crash" | "error"; else None.
    failure_kind: Optional[str] = None


@dataclass(frozen=True)
class FailedSpec:
    """A cell that failed every attempt; the grid continued without it."""

    spec: RunSpec
    error: str
    attempts: int
    #: What killed the last attempt: "timeout" | "crash" | "error".
    kind: str = "error"


@dataclass
class GridResult:
    """Outcome of one grid execution (possibly partial)."""

    specs: list[RunSpec]
    results: dict[RunSpec, Any]
    failed_specs: list[FailedSpec] = field(default_factory=list)
    cache_hits: int = 0
    executed: int = 0
    #: Profile artifacts for specs run with ``profile=True``
    #: (the :meth:`repro.obs.Observability.to_json_dict` payload).
    artifacts: dict[RunSpec, dict] = field(default_factory=dict)
    #: Windowed in-sim time series for specs run with ``series=True``
    #: (the :meth:`repro.obs.Observability.series_json` payload).
    series: dict[RunSpec, dict] = field(default_factory=dict)
    #: Structured resilience outcome (retries by kind, resume stats,
    #: degradation ladder steps); populated by every run_grid call.
    report: Optional[RunReport] = None

    @property
    def complete(self) -> bool:
        return not self.failed_specs

    def ordered(self) -> list[Any]:
        """Results aligned with the input spec order (None where failed)."""
        return [self.results.get(s) for s in self.specs]

    def failed_by_kind(self) -> Counter:
        """Failure counts keyed by kind ("timeout" / "crash" / "error")."""
        return Counter(f.kind for f in self.failed_specs)

    def __getitem__(self, spec: RunSpec) -> Any:
        try:
            return self.results[spec]
        except KeyError:
            raise GridError(f"no result for {spec.display_label()} "
                            f"(failed or not part of this grid)") from None

    def raise_if_failed(self) -> "GridResult":
        """For drivers that need the *full* grid (tables, aggregates)."""
        if self.failed_specs:
            names = ", ".join(f.spec.display_label() for f in self.failed_specs[:5])
            kinds = ", ".join(f"{k}: {v}" for k, v in
                              sorted(self.failed_by_kind().items()))
            raise GridError(
                f"{len(self.failed_specs)} grid cell(s) failed ({kinds}) "
                f"(first: {names}); "
                f"last error: {self.failed_specs[-1].error}"
            )
        return self


def _pool_context():
    """Prefer fork: cheap on Linux, and workers inherit workload kinds
    registered by the calling process (tests rely on this)."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else methods[0])


def run_grid(
    specs: Iterable[RunSpec],
    *,
    jobs: Optional[int] = None,
    cache_dir: str | os.PathLike | None = None,
    use_cache: bool = True,
    timeout_s: Optional[float] = DEFAULT_TIMEOUT_S,
    retries: int = 1,
    progress: Optional[Callable[[ProgressEvent], None]] = None,
    telemetry=None,
    retry_policy: Optional[RetryPolicy] = None,
    journal: "RunJournal | os.PathLike | str | None" = None,
    resume: "JournalState | os.PathLike | str | None" = None,
    chaos=None,
    max_pool_rebuilds: int = DEFAULT_MAX_POOL_REBUILDS,
    breaker: Optional[CircuitBreaker] = None,
    cache_fs: Optional[CacheFS] = None,
) -> GridResult:
    """Execute a grid of specs, using the cache and ``jobs`` workers.

    ``jobs=None``/``0``/``1`` executes serially in-process (still using
    the cache); ``jobs=N`` fans out across N worker processes. Each
    failing cell (exception, timeout, worker crash) is retried
    ``retries`` times — with the backoff schedule of ``retry_policy``,
    which overrides ``retries`` when given — and then reported in
    :attr:`GridResult.failed_specs`, classified as timeout / crash /
    error; the rest of the grid completes regardless. Pool rebuilds
    after worker crashes are capped at ``max_pool_rebuilds``, and the
    ``breaker`` (a :class:`~repro.resilience.policy.CircuitBreaker`,
    default-constructed when None) degrades the pool — half the
    workers, then serial in-process — when the failure rate trips it.

    ``journal`` (a path or an open
    :class:`~repro.resilience.journal.RunJournal`) records every cell's
    lifecycle durably. ``resume`` (a path or a replayed
    :class:`~repro.resilience.journal.JournalState`) replays a previous
    journal: cells it witnessed as done are served from the cache after
    **re-verifying** their bytes against the journaled result hash —
    a mismatch quarantines the entry and re-runs the cell; resuming
    against a changed matrix raises
    :class:`~repro.resilience.journal.ResumeError`. Passing both (the
    usual ``--resume`` shape) appends the new lifecycle to the same
    journal file.

    ``chaos`` (a :class:`~repro.resilience.chaos.ChaosPolicy`) and
    ``cache_fs`` (a :class:`~repro.resilience.integrity.CacheFS`)
    inject deterministic faults for the chaos battery; both default to
    "no faults".

    ``telemetry`` (a :class:`repro.telemetry.HarnessTelemetry`) records
    wall-clock spans, cache instants and counters for every state
    transition. Every touch point is guarded by
    ``telemetry is not None and telemetry.enabled``, so a detached grid
    pays a single boolean check (the exploding-telemetry test pins
    this), and telemetry observes only harness wall-clock — results and
    cache contents are byte-identical with it on or off.

    A ``progress`` callback that raises is disabled after its first
    exception (with a :class:`RuntimeWarning`) instead of sinking the
    grid: observation must never abort the experiment.
    """
    tel = telemetry if (telemetry is not None and telemetry.enabled) else None
    spec_list = list(specs)
    unique: dict[RunSpec, None] = dict.fromkeys(spec_list)
    total = len(unique)
    report = RunReport(cells=total)

    def note_quarantine(path: Path, moved: Optional[Path]) -> None:
        report.quarantined += 1
        if tel is not None:
            tel.instant("cache.quarantine", lane="cache", path=str(path))
            tel.counter("cache_quarantined", help="corrupt cache files quarantined")

    cache = (ResultCache(cache_dir, fs=cache_fs, on_quarantine=note_quarantine)
             if use_cache else None)
    result = GridResult(specs=spec_list, results={}, report=report)
    done = 0

    policy = retry_policy if retry_policy is not None else RetryPolicy(retries=retries)
    retries = policy.retries
    keys: dict[RunSpec, str] = {spec: spec_key(spec) for spec in unique}

    resume_state: Optional[JournalState] = None
    if resume is not None:
        resume_state = (resume if isinstance(resume, JournalState)
                        else replay_journal(resume))
        resume_state.check_digest(keys.values())

    own_journal = False
    if journal is not None and not isinstance(journal, RunJournal):
        journal = (RunJournal.resume(journal) if resume_state is not None
                   else RunJournal.create(journal, keys.values()))
        own_journal = True

    def jrecord(event: str, spec: RunSpec, **extra: Any) -> None:
        if journal is not None:
            journal.record(event, keys[spec], **extra)

    grid_span = (
        tel.span("grid.run", cells=total, jobs=jobs or 1)
        if tel is not None else contextlib.nullcontext({})
    )

    def emit(spec: RunSpec, status: str, attempt: int = 1,
             error: str | None = None, duration_s: Optional[float] = None,
             cache_hit: bool = False, failure_kind: Optional[str] = None) -> None:
        nonlocal progress
        if progress is None:
            return
        try:
            progress(ProgressEvent(spec, status, done, total, attempt, error,
                                   duration_s, cache_hit, failure_kind))
        except Exception as exc:
            warnings.warn(
                f"progress callback disabled after raising {exc!r}",
                RuntimeWarning, stacklevel=2,
            )
            progress = None

    def tel_settle(spec: RunSpec, status: str, duration_ns: Optional[int]) -> None:
        """One settled-cell record: counter + wall histogram."""
        assert tel is not None
        tel.counter("cells", help="grid cells settled by status", status=status)
        if duration_ns is not None:
            tel.observe("shard_wall_ns", duration_ns,
                        help="per-attempt shard wall-clock", status=status)

    with contextlib.ExitStack() as _stack:
        grid_attrs = _stack.enter_context(grid_span)
        if own_journal:
            _stack.callback(journal.close)

        def settle_hit(spec: RunSpec, hit: Any, art: Optional[dict],
                       ser: Optional[dict], status: str) -> None:
            nonlocal done
            result.results[spec] = hit
            if art is not None:
                result.artifacts[spec] = art
            if ser is not None:
                result.series[spec] = ser
            result.cache_hits += 1
            done += 1
            if tel is not None:
                tel.instant("cache.hit", lane="cache", spec=spec.display_label())
                tel.counter("cache_hits", help="grid cells served from cache")
                tel_settle(spec, status, None)
            emit(spec, status, cache_hit=True)

        pending: list[RunSpec] = []
        for spec in unique:
            key = keys[spec]
            hit = cache.load(spec) if cache is not None else None
            art = cache.load_artifact(spec) if cache is not None and spec.profile else None
            ser = cache.load_series(spec) if cache is not None and spec.series else None
            if tel is not None and cache is not None:
                tel.instant("cache.probe", lane="cache", spec=spec.display_label())
            # A profiled (or series) spec only counts as a hit when
            # its artifacts are present too — a result without them
            # is a miss.
            full_hit = (hit is not None
                        and (not spec.profile or art is not None)
                        and (not spec.series or ser is not None))
            want_hash = (resume_state.done.get(key)
                         if resume_state is not None else None)
            if full_hit and want_hash is not None:
                actual = result_hash(encode_result(hit))
                if actual == want_hash:
                    report.resumed += 1
                    report.reverified += 1
                    if tel is not None:
                        tel.instant("resume.hit", lane="cache",
                                    spec=spec.display_label())
                        tel.counter("cells_resumed",
                                    help="cells skipped via journal resume")
                        tel.counter("cells_reverified",
                                    help="resumed cells re-verified against "
                                         "the journaled result hash")
                    jrecord("resumed", spec, result_hash=actual)
                    settle_hit(spec, hit, art, ser, "resumed")
                    continue
                # The cached bytes no longer match what the journal
                # witnessed: the entry is suspect as a unit — quarantine
                # it and re-run the cell.
                report.resume_mismatches += 1
                cache.quarantine_entry(key)
                if tel is not None:
                    tel.instant("resume.mismatch", lane="cache",
                                spec=spec.display_label())
                    tel.counter("resume_mismatches",
                                help="resume re-verification failures")
                full_hit = False
                hit = None
            if full_hit:
                if journal is not None:
                    jrecord("cached", spec, result_hash=result_hash(encode_result(hit)))
                settle_hit(spec, hit, art, ser, "cached")
            else:
                if want_hash is not None and tel is not None:
                    # The journal says done but the cache cannot serve it
                    # (evicted, corrupt, or just quarantined): re-run.
                    tel.instant("resume.miss", lane="cache",
                                spec=spec.display_label())
                if tel is not None and cache is not None:
                    tel.instant("cache.miss", lane="cache", spec=spec.display_label())
                    tel.counter("cache_misses", help="grid cells not in cache")
                jrecord("scheduled", spec)
                pending.append(spec)

        def settle_ok(spec: RunSpec, encoded: dict) -> None:
            nonlocal done, cache
            obs = encoded.pop("obs", None)
            series = encoded.pop("series", None)
            wall_s = encoded.pop("wall_s", None)
            pid = encoded.pop("pid", None)
            if obs is not None:
                result.artifacts[spec] = obs
            if series is not None:
                result.series[spec] = series
            result.results[spec] = decode_result(encoded)
            result.executed += 1
            if tel is not None and wall_s is not None:
                # Reconstruct the worker's execution as a slice on its
                # lane: it ended (approximately) now and lasted wall_s.
                wall_ns = int(wall_s * 1e9)
                end_ns = tel.now_ns()
                tel.add_span("shard.execute", end_ns - wall_ns, wall_ns,
                             lane=f"worker-{pid}", spec=spec.display_label())
                tel_settle(spec, "ran", wall_ns)
            if cache is not None:
                try:
                    cache.store_entry(spec, encoded, obs=obs, series=series)
                    if tel is not None:
                        tel.instant("cache.write", lane="cache",
                                    spec=spec.display_label())
                        tel.counter("cache_writes", help="results written to cache")
                except OSError as exc:
                    # An unwritable store (bad cache_dir, full disk) must not
                    # sink a grid whose results are already in memory.
                    warnings.warn(
                        f"result cache disabled: cannot write {cache.root}: {exc}",
                        RuntimeWarning, stacklevel=2,
                    )
                    cache = None
            if journal is not None:
                jrecord("done", spec, result_hash=result_hash(encoded))
            done += 1
            emit(spec, "ran", duration_s=wall_s)

        def settle_failed(spec: RunSpec, error: str, attempts: int,
                          duration_s: Optional[float] = None,
                          kind: str = "error") -> None:
            nonlocal done
            result.failed_specs.append(FailedSpec(spec, error, attempts, kind))
            report.failures[kind] += 1
            done += 1
            if tel is not None:
                tel.instant("shard.failed", spec=spec.display_label(),
                            error=error, attempts=attempts, kind=kind)
                tel_settle(spec, "failed",
                           int(duration_s * 1e9) if duration_s is not None else None)
            jrecord("failed", spec, error=error, kind=kind, attempts=attempts)
            emit(spec, "failed", attempts, error, duration_s, failure_kind=kind)

        def note_retry(spec: RunSpec, attempt: int, error: str,
                       duration_s: Optional[float], kind: str = "error") -> None:
            report.retries[kind] += 1
            if tel is not None:
                tel.instant("shard.retry", spec=spec.display_label(),
                            error=error, attempt=attempt, kind=kind)
                tel_settle(spec, "retry",
                           int(duration_s * 1e9) if duration_s is not None else None)
            emit(spec, "retry", attempt, error, duration_s, failure_kind=kind)

        def maybe_abort() -> None:
            if chaos is None or getattr(chaos, "abort_after", None) is None:
                return
            settled_live = result.executed + len(result.failed_specs)
            if settled_live >= chaos.abort_after:
                if tel is not None:
                    tel.instant("chaos.abort", after=settled_live)
                raise ChaosAbort(
                    f"chaos: simulated harness crash after {settled_live} "
                    f"settled cell(s)")

        def finish() -> GridResult:
            report.cache_hits = result.cache_hits
            report.executed = result.executed
            if tel is not None:
                grid_attrs.update(cache_hits=result.cache_hits,
                                  executed=result.executed,
                                  failed=len(result.failed_specs))
            return result

        def run_serial(pend: list[RunSpec]) -> None:
            for spec in pend:
                attempt = 0
                while True:
                    attempt += 1
                    t0 = time.monotonic()
                    try:
                        jrecord("started", spec, attempt=attempt)
                        settle_ok(spec, _worker_run(spec, timeout_s, chaos))
                        break
                    except ChaosAbort:
                        raise
                    except Exception as exc:
                        elapsed = time.monotonic() - t0
                        kind = classify_failure(exc)
                        if attempt > retries:
                            settle_failed(spec, repr(exc), attempt, elapsed, kind)
                            break
                        note_retry(spec, attempt, repr(exc), elapsed, kind)
                        delay = policy.delay_s(keys[spec], attempt)
                        if delay > 0:
                            time.sleep(delay)
                maybe_abort()

        if not pending:
            return finish()

        if not jobs or jobs <= 1:
            run_serial(pending)
            return finish()

        ctx = _pool_context()
        attempts: dict[RunSpec, int] = {s: 1 for s in pending}
        cur_jobs = jobs
        rebuilds = 0
        brk = breaker if breaker is not None else CircuitBreaker()
        pool = ProcessPoolExecutor(max_workers=cur_jobs, mp_context=ctx)
        if tel is not None:
            tel.gauge("pool_workers", cur_jobs, help="process pool size")
        submitted_at: dict[Any, float] = {}

        def submit(p, spec: RunSpec):
            jrecord("started", spec, attempt=attempts[spec])
            try:
                fut = p.submit(_worker_run, spec, timeout_s, chaos)
            except BrokenProcessPool as exc:
                # The pool died while we were still submitting (a very
                # fast worker crash). Hand back a dead future carrying
                # the breakage so the wait loop's rebuild logic handles
                # it exactly like a crash observed in flight.
                fut = Future()
                fut.set_exception(exc)
            submitted_at[fut] = time.monotonic()
            return fut

        serial_fallback: list[RunSpec] = []
        in_flight: dict[Any, RunSpec] = {submit(pool, spec): spec for spec in pending}
        try:
            while in_flight:
                finished, _ = wait(list(in_flight), return_when=FIRST_COMPLETED)
                pool_broken = False
                for fut in finished:
                    spec = in_flight.pop(fut)
                    elapsed = time.monotonic() - submitted_at.pop(fut, time.monotonic())
                    try:
                        encoded = fut.result()
                    except BrokenProcessPool as exc:
                        # The pool died (a worker crashed hard). Every
                        # in-flight future is lost: rebuild the pool and
                        # retry them all, charging each one attempt.
                        casualties = [spec] + list(in_flight.values())
                        in_flight.clear()
                        submitted_at.clear()
                        with contextlib.suppress(Exception):
                            pool.shutdown(wait=False, cancel_futures=True)
                        rebuilds += 1
                        report.pool_rebuilds += 1
                        brk.record(False)
                        if rebuilds > max_pool_rebuilds:
                            # A pool that cannot stay alive is an outage,
                            # not a transient: fail what is left with a
                            # clear error instead of rebuilding forever.
                            pool = None
                            for s in casualties:
                                settle_failed(
                                    s,
                                    f"pool rebuild cap reached "
                                    f"({max_pool_rebuilds}); last crash: {exc!r}",
                                    attempts[s], elapsed, "crash")
                            maybe_abort()
                            break
                        pool = ProcessPoolExecutor(max_workers=cur_jobs,
                                                   mp_context=ctx)
                        if tel is not None:
                            tel.instant("pool.rebuild", error=repr(exc),
                                        casualties=len(casualties))
                            tel.counter("pool_rebuilds",
                                        help="process pool crash recoveries")
                        for s in casualties:
                            if attempts[s] > retries:
                                settle_failed(s, repr(exc), attempts[s],
                                              elapsed, "crash")
                            else:
                                note_retry(s, attempts[s], repr(exc), elapsed,
                                           "crash")
                                attempts[s] += 1
                                in_flight[submit(pool, s)] = s
                        maybe_abort()
                        pool_broken = True
                    except Exception as exc:  # worker raised (incl. RunTimeout)
                        kind = classify_failure(exc)
                        brk.record(False)
                        if attempts[spec] > retries:
                            settle_failed(spec, repr(exc), attempts[spec],
                                          elapsed, kind)
                        else:
                            note_retry(spec, attempts[spec], repr(exc), elapsed,
                                       kind)
                            attempts[spec] += 1
                            delay = policy.delay_s(keys[spec], attempts[spec] - 1)
                            if delay > 0:
                                time.sleep(delay)
                            in_flight[submit(pool, spec)] = spec
                        maybe_abort()
                    else:
                        brk.record(True)
                        settle_ok(spec, encoded)
                        maybe_abort()
                    if pool_broken:
                        break  # `in_flight` was rebuilt wholesale; re-wait

                if in_flight and pool is not None and brk.tripped:
                    # Degradation ladder: the windowed failure rate
                    # crossed the breaker threshold. First trip halves
                    # the pool; the next falls back to serial in-process
                    # execution — degrade before giving up.
                    unsettled = list(in_flight.values())
                    in_flight.clear()
                    submitted_at.clear()
                    with contextlib.suppress(Exception):
                        pool.shutdown(wait=False, cancel_futures=True)
                    step = brk.trip_and_reset()
                    if step == 1 and cur_jobs > 1:
                        cur_jobs = max(1, cur_jobs // 2)
                        report.degradation.append(f"pool shrunk to {cur_jobs}")
                        if tel is not None:
                            tel.instant("pool.degrade", step=step, jobs=cur_jobs)
                            tel.counter("pool_degrades",
                                        help="degradation ladder steps")
                            tel.gauge("pool_workers", cur_jobs,
                                      help="process pool size")
                        pool = ProcessPoolExecutor(max_workers=cur_jobs,
                                                   mp_context=ctx)
                        for s in unsettled:
                            in_flight[submit(pool, s)] = s
                    else:
                        report.degradation.append("fell back to serial")
                        if tel is not None:
                            tel.instant("pool.degrade", step=step, jobs=1,
                                        mode="serial")
                            tel.counter("pool_degrades",
                                        help="degradation ladder steps")
                        pool = None
                        serial_fallback = unsettled
                        break
        finally:
            if pool is not None:
                with contextlib.suppress(Exception):
                    pool.shutdown(wait=False, cancel_futures=True)
        if serial_fallback:
            run_serial(serial_fallback)
        return finish()


def progress_reporter(stream=None):
    """A ``(stats, callback)`` pair for CLI-style grid drivers.

    ``callback`` prints one line per settled cell to ``stream`` (stderr
    by default) and tallies statuses in ``stats`` — drivers use the
    tally to report how much of a sweep was served from cache.
    """
    import collections
    import sys

    stats: collections.Counter[str] = collections.Counter()
    out = stream if stream is not None else sys.stderr

    def callback(event: ProgressEvent) -> None:
        stats[event.status] += 1
        detail = f" ({event.error})" if event.error else ""
        took = f" [{event.duration_s:.2f}s]" if event.duration_s is not None else ""
        print(f"[{event.done}/{event.total}] {event.status:<6} "
              f"{event.spec.display_label()}{took}{detail}", file=out)

    return stats, callback


# --------------------------------------------------------------------------
# A/B comparison helpers (the paper's measurement, grid-shaped)
# --------------------------------------------------------------------------

def ab_specs(
    workload: WorkloadSpec,
    *,
    baseline: TickMode = TickMode.TICKLESS,
    candidate: TickMode = TickMode.PARATICK,
    seed: int = 0,
    label: Optional[str] = None,
    **knobs: Any,
) -> tuple[RunSpec, RunSpec]:
    """The paper's A/B pair: same workload/seed/knobs, two tick modes."""
    stem = label or workload.kind
    base = RunSpec(workload=workload, tick_mode=baseline, seed=seed,
                   label=f"{stem}/{baseline.value}", **knobs)
    cand = base.with_(tick_mode=candidate, label=f"{stem}/{candidate.value}")
    return base, cand


def compare_from_grid(
    grid: GridResult, base: RunSpec, cand: RunSpec, label: str
) -> Comparison:
    """Build one paper-style comparison row out of a finished grid."""
    return compare_runs(grid[base], grid[cand], label)


def cost_overrides_from(costs: Any) -> tuple[tuple[str, int], ...]:
    """Diff a :class:`CostModel` against the defaults, as spec overrides."""
    from repro.host.costs import DEFAULT_COSTS

    out = []
    for f in fields(costs):
        value = getattr(costs, f.name)
        if value != getattr(DEFAULT_COSTS, f.name):
            out.append((f.name, value))
    return tuple(sorted(out))


def spec_for(
    workload: Any,
    *,
    tick_mode: TickMode,
    seed: int = 0,
    label: Optional[str] = None,
    **run_kwargs: Any,
) -> RunSpec:
    """Translate a ``run_workload``-style call into a :class:`RunSpec`.

    ``workload`` may be a :class:`WorkloadSpec` or a live workload
    object (reverse-mapped via :func:`describe_workload`); the remaining
    keywords mirror :func:`~repro.experiments.runner.run_workload`.
    Raises :class:`GridError` for anything the engine cannot express
    (an unknown workload type, a live ``tracer``).
    """
    ws = workload if isinstance(workload, WorkloadSpec) else describe_workload(workload)
    if run_kwargs.get("tracer") is not None:
        raise GridError("a live tracer cannot cross the worker boundary")
    run_kwargs.pop("tracer", None)
    machine = run_kwargs.pop("machine_spec", None)
    costs = run_kwargs.pop("costs", None)
    overrides = cost_overrides_from(costs) if costs is not None else ()
    return RunSpec(workload=ws, tick_mode=tick_mode, seed=seed, machine=machine,
                   cost_overrides=overrides, label=label, **run_kwargs)


def describe_workload(workload: Any) -> WorkloadSpec:
    """Reverse-map a live workload object to its declarative spec.

    Covers every in-tree workload class; raises :class:`GridError` for
    unknown types (callers fall back to serial in-process execution).
    """
    from repro.hw.nic import DATACENTER_10G
    from repro.workloads.fio import FioWorkload
    from repro.workloads.micro import (
        IdlePeriodWorkload,
        IdleWorkload,
        PingPongWorkload,
        SyncStormWorkload,
    )
    from repro.workloads.netserve import NetServiceWorkload
    from repro.workloads.parsec import ParsecWorkload

    if isinstance(workload, ParsecWorkload):
        return WorkloadSpec.make(
            "parsec", name=workload.profile.name, threads=workload.threads,
            target_cycles=workload.target_cycles,
        )
    if isinstance(workload, FioWorkload):
        return WorkloadSpec.make(
            "fio", category=workload.job.category, block_size=workload.job.block_size,
            total_bytes=workload.total_bytes,
        )
    if isinstance(workload, IdleWorkload):
        return WorkloadSpec.make("micro.idle", vcpus=workload.vcpus)
    if isinstance(workload, SyncStormWorkload):
        return WorkloadSpec.make(
            "micro.syncstorm", threads=workload.threads,
            events_per_second=workload.events_per_second,
            duration_cycles=workload.duration_cycles,
        )
    if isinstance(workload, IdlePeriodWorkload):
        return WorkloadSpec.make(
            "micro.idleperiod", idle_ns=workload.idle_ns,
            iterations=workload.iterations, work_cycles=workload.work_cycles,
        )
    if isinstance(workload, PingPongWorkload):
        return WorkloadSpec.make(
            "micro.pingpong", rounds=workload.rounds,
            work_cycles=workload.work_cycles, same_vcpu=workload.same_vcpu,
        )
    if isinstance(workload, NetServiceWorkload) and workload.profile is DATACENTER_10G:
        return WorkloadSpec.make(
            "netserve", workers=workload.workers, requests=workload.requests,
            request_bytes=workload.request_bytes, think_cycles=workload.think_cycles,
        )
    raise GridError(f"cannot describe workload {type(workload).__name__} as a spec")
