"""Ablations of the design choices the paper calls out.

1. **keep-timer-on-idle-exit** (§5.2.5) — "we heuristically decide not
   to disable this timer upon idle exit"; the ablation disables the
   timer at idle exit like tickless does, costing an extra MSR exit per
   re-arm.
2. **last-tick update** (§5.1) — "If the vCPU has a pending local timer
   interrupt upon VM entry, the last_tick field ... is updated";
   without it, paratick injects redundant virtual ticks right after
   guest-programmed wake timers fire.
3. **halt polling** (§6) — the paper disables it because polling burns
   cycles without helping contended workloads; we quantify that.
4. **host/guest tick-frequency mismatch** (§4.1) — tick delivery
   accuracy when the host tick is not a multiple of the guest's.
5. **DID comparison** (§7) — Direct Interrupt Delivery removes even the
   host-tick exits but dedicates a core; crossover vs paratick.

Every study is a small grid of :class:`~repro.experiments.parallel.RunSpec`
cells executed through the parallel experiment engine, so ``jobs=N``
fans the variants out over worker processes and the result cache makes
re-running an ablation after a code change incremental.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass

from repro.config import HostFeatures, MachineSpec, TickMode
from repro.core.did import DidEstimate, crossover_cpus, estimate_did
from repro.core.paratick_guest import ParatickPolicy
from repro.experiments.parallel import RunSpec, WorkloadSpec, run_grid
from repro.host.costs import DEFAULT_COSTS
from repro.metrics.perf import RunMetrics
from repro.sim.timebase import MSEC, SEC


@contextlib.contextmanager
def keep_timer_heuristic(enabled: bool):
    """Temporarily flip §5.2.5's keep-timer heuristic (class-level knob)."""
    prev = ParatickPolicy.keep_timer_on_idle_exit
    ParatickPolicy.keep_timer_on_idle_exit = enabled
    try:
        yield
    finally:
        ParatickPolicy.keep_timer_on_idle_exit = prev


def _grid(specs, *, jobs=None, cache_dir=None, use_cache=False, progress=None,
          telemetry=None):
    return run_grid(
        specs, jobs=jobs, cache_dir=cache_dir, use_cache=use_cache,
        progress=progress, telemetry=telemetry,
    ).raise_if_failed()


@dataclass
class AblationRow:
    name: str
    variant_exits: int
    reference_exits: int

    @property
    def exit_delta(self) -> float:
        return self.variant_exits / self.reference_exits - 1.0


def ablate_keep_timer(*, seed: int = 0, **engine) -> AblationRow:
    """Paratick with vs without the keep-timer-on-idle-exit heuristic."""
    wl = WorkloadSpec.make(
        "micro.syncstorm", threads=4, events_per_second=2000.0, duration_cycles=300_000_000
    )
    ref = RunSpec(wl, tick_mode=TickMode.PARATICK, seed=seed, label="keep-timer/on")
    var = ref.with_(keep_timer_on_idle_exit=False, label="keep-timer/off")
    grid = _grid([ref, var], **engine)
    return AblationRow(
        "keep-timer-on-idle-exit OFF", grid[var].total_exits, grid[ref].total_exits
    )


def ablate_last_tick_heuristic(*, seed: int = 0, **engine) -> AblationRow:
    """Paratick with vs without §5.1's last-tick update heuristic.

    The cost of disabling it is *redundant virtual ticks*: the guest
    already received a timer interrupt that performs tick work, and the
    host injects vector 235 on top. We therefore compare injected
    virtual ticks (exit counts barely move — injection rides on entries
    that happen anyway, which is the whole point of the design).
    """
    # A sleepy workload whose wake-ups *are* guest timer interrupts —
    # exactly the entries §5.1's heuristic covers (sync wake-ups arrive
    # as IPIs and never trigger it).
    wl = WorkloadSpec.make(
        "micro.idleperiod", idle_ns=6 * MSEC, iterations=250, work_cycles=500_000
    )
    ref = RunSpec(wl, tick_mode=TickMode.PARATICK, seed=seed, label="last-tick/on")
    var = ref.with_(
        features=HostFeatures(paratick_last_tick_heuristic=False), label="last-tick/off"
    )
    grid = _grid([ref, var], **engine)
    return AblationRow(
        "last-tick heuristic OFF (virtual ticks)",
        int(grid[var].extra["virtual_ticks"]),
        max(1, int(grid[ref].extra["virtual_ticks"])),
    )


@dataclass
class HaltPollRow:
    poll_ns: int
    exec_time_ns: int
    poll_cycles: int
    total_cycles: int


def ablate_halt_polling(
    *, poll_windows=(0, 50_000, 200_000), seed: int = 0, **engine
) -> list[HaltPollRow]:
    """Why the paper disabled halt polling: cycles burned vs time saved."""
    from repro.hw.cpu import CycleDomain

    wl = WorkloadSpec.make(
        "micro.syncstorm", threads=4, events_per_second=3000.0, duration_cycles=200_000_000
    )
    specs = [
        RunSpec(
            wl, tick_mode=TickMode.TICKLESS, seed=seed,
            features=HostFeatures(halt_poll_ns=poll), label=f"halt-poll/{poll}",
        )
        for poll in poll_windows
    ]
    grid = _grid(specs, **engine)
    rows = []
    for poll, spec in zip(poll_windows, specs):
        m = grid[spec]
        poll_ns = m.ledger.get(CycleDomain.HALT_POLL, 0)
        rows.append(
            HaltPollRow(
                poll_ns=poll,
                exec_time_ns=m.exec_time_ns,
                poll_cycles=int(poll_ns * 2.2),
                total_cycles=m.total_cycles,
            )
        )
    return rows


@dataclass
class MismatchRow:
    host_hz: int
    guest_hz: int
    #: §4.1 preemption-timer backstop enabled?
    rate_adapt: bool
    #: Virtual ticks the guest actually received per second while active.
    delivered_hz: float
    total_exits: int


def ablate_frequency_mismatch(*, seed: int = 0, **engine) -> list[MismatchRow]:
    """§4.1: tick delivery when host and guest frequencies differ.

    Paratick injects on VM entry; when the host ticks slower than the
    guest expects, delivery degrades toward the host rate for purely
    CPU-bound guests. The paper's general design (left as future work in
    its implementation) arms the preemption timer as a backstop — we
    implement it behind ``HostFeatures.paratick_rate_adapt`` and measure
    both variants: the backstop restores the declared rate at the price
    of backstop exits.
    """
    wl = WorkloadSpec.make("parsec", name="swaptions", target_cycles=400_000_000)
    cells = []
    specs = []
    for host_hz in (100, 250, 1000):
        for adapt in (False, True):
            spec = RunSpec(
                wl, tick_mode=TickMode.PARATICK, seed=seed, noise=False,
                machine=MachineSpec(host_tick_hz=host_hz),
                features=HostFeatures(paratick_rate_adapt=adapt),
                label=f"mismatch/{host_hz}hz/{'adapt' if adapt else 'plain'}",
            )
            cells.append((host_hz, adapt, spec))
            specs.append(spec)
    grid = _grid(specs, **engine)
    rows = []
    for host_hz, adapt, spec in cells:
        m = grid[spec]
        secs = m.exec_time_ns / SEC
        rows.append(
            MismatchRow(
                host_hz=host_hz,
                guest_hz=250,
                rate_adapt=adapt,
                delivered_hz=m.extra["virtual_ticks"] / secs,
                total_exits=m.total_exits,
            )
        )
    return rows


@dataclass
class EoiRow:
    virtual_eoi: bool
    exit_reduction: float
    base_exits: int


def ablate_virtual_eoi(*, seed: int = 0, **engine) -> list[EoiRow]:
    """Paratick's benefit on pre-APICv hosts (EOI writes trap).

    Trapped EOIs add one exit per handled interrupt *in every mode*,
    diluting the relative exit reduction but leaving paratick's absolute
    savings intact — the mechanism is orthogonal to EOI virtualization.
    """
    wl = WorkloadSpec.make(
        "micro.syncstorm", threads=4, events_per_second=2000.0, duration_cycles=200_000_000
    )
    cells = []
    specs = []
    for veoi in (True, False):
        features = HostFeatures(virtual_eoi=veoi)
        tag = "veoi" if veoi else "trap"
        base = RunSpec(wl, tick_mode=TickMode.TICKLESS, seed=seed,
                       features=features, label=f"eoi/{tag}/tickless")
        cand = base.with_(tick_mode=TickMode.PARATICK, label=f"eoi/{tag}/paratick")
        cells.append((veoi, base, cand))
        specs += [base, cand]
    grid = _grid(specs, **engine)
    return [
        EoiRow(
            virtual_eoi=veoi,
            exit_reduction=grid[cand].total_exits / grid[base].total_exits - 1.0,
            base_exits=grid[base].total_exits,
        )
        for veoi, base, cand in cells
    ]


@dataclass
class SensitivityRow:
    pollution_cycles: int
    throughput_gain: float
    exit_reduction: float


def ablate_exit_cost_sensitivity(
    *, pollutions=(10_000, 55_000, 150_000), seed: int = 0, **engine
) -> list[SensitivityRow]:
    """How the headline throughput gain scales with per-exit cost.

    Exit *counts* are mechanical and do not move with the cost model;
    the throughput gain is linear-ish in the per-exit cost. This sweep
    quantifies the calibration discussion in EXPERIMENTS.md: matching
    the paper's +13 % (Table 3 medium) needs a per-exit cost beyond what
    published measurements support; the default (55k cycles) is the
    defensible middle.
    """
    wl = WorkloadSpec.make(
        "parsec", name="streamcluster", threads=8, target_cycles=100_000_000
    )
    cells = []
    specs = []
    for pollution in pollutions:
        overrides = (("pollution", pollution),)
        base = RunSpec(wl, tick_mode=TickMode.TICKLESS, seed=seed,
                       cost_overrides=overrides, label=f"cost/{pollution}/tickless")
        cand = base.with_(tick_mode=TickMode.PARATICK, label=f"cost/{pollution}/paratick")
        cells.append((pollution, base, cand))
        specs += [base, cand]
    grid = _grid(specs, **engine)
    return [
        SensitivityRow(
            pollution_cycles=pollution,
            throughput_gain=grid[base].total_cycles / grid[cand].total_cycles - 1.0,
            exit_reduction=grid[cand].total_exits / grid[base].total_exits - 1.0,
        )
        for pollution, base, cand in cells
    ]


def ablate_did(
    *, seed: int = 0, machine_cpus: int = 16, **engine
) -> tuple[DidEstimate, float, RunMetrics, RunMetrics]:
    """DID vs paratick on a sync-heavy workload (§7's trade-off)."""
    wl = WorkloadSpec.make(
        "micro.syncstorm", threads=8, events_per_second=8000.0, duration_cycles=200_000_000
    )
    base_spec = RunSpec(wl, tick_mode=TickMode.TICKLESS, seed=seed, label="did/tickless")
    para_spec = base_spec.with_(tick_mode=TickMode.PARATICK, label="did/paratick")
    grid = _grid([base_spec, para_spec], **engine)
    base, para = grid[base_spec], grid[para_spec]
    c = DEFAULT_COSTS
    est = estimate_did(
        base,
        para,
        machine_cpus=machine_cpus,
        exit_cost_cycles=c.vmexit_hw + c.handler_external_interrupt + c.vmentry_hw + c.pollution,
        clock_hz=2_200_000_000,
    )
    gross = est.throughput_without_core_loss
    return est, crossover_cpus(gross), base, para
