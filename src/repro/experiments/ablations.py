"""Ablations of the design choices the paper calls out.

1. **keep-timer-on-idle-exit** (§5.2.5) — "we heuristically decide not
   to disable this timer upon idle exit"; the ablation disables the
   timer at idle exit like tickless does, costing an extra MSR exit per
   re-arm.
2. **last-tick update** (§5.1) — "If the vCPU has a pending local timer
   interrupt upon VM entry, the last_tick field ... is updated";
   without it, paratick injects redundant virtual ticks right after
   guest-programmed wake timers fire.
3. **halt polling** (§6) — the paper disables it because polling burns
   cycles without helping contended workloads; we quantify that.
4. **host/guest tick-frequency mismatch** (§4.1) — tick delivery
   accuracy when the host tick is not a multiple of the guest's.
5. **DID comparison** (§7) — Direct Interrupt Delivery removes even the
   host-tick exits but dedicates a core; crossover vs paratick.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass

from repro.config import HostFeatures, MachineSpec, TickMode
from repro.core.did import DidEstimate, crossover_cpus, estimate_did
from repro.core.paratick_guest import ParatickPolicy
from repro.experiments.runner import run_workload
from repro.host.costs import DEFAULT_COSTS
from repro.metrics.perf import RunMetrics
from repro.sim.timebase import SEC
from repro.workloads.micro import SyncStormWorkload
from repro.workloads.parsec import benchmark


@contextlib.contextmanager
def keep_timer_heuristic(enabled: bool):
    """Temporarily flip §5.2.5's keep-timer heuristic (class-level knob)."""
    prev = ParatickPolicy.keep_timer_on_idle_exit
    ParatickPolicy.keep_timer_on_idle_exit = enabled
    try:
        yield
    finally:
        ParatickPolicy.keep_timer_on_idle_exit = prev


@dataclass
class AblationRow:
    name: str
    variant_exits: int
    reference_exits: int

    @property
    def exit_delta(self) -> float:
        return self.variant_exits / self.reference_exits - 1.0


def ablate_keep_timer(*, seed: int = 0) -> AblationRow:
    """Paratick with vs without the keep-timer-on-idle-exit heuristic."""
    wl = SyncStormWorkload(threads=4, events_per_second=2000.0, duration_cycles=300_000_000)
    with keep_timer_heuristic(True):
        ref = run_workload(wl, tick_mode=TickMode.PARATICK, seed=seed)
    with keep_timer_heuristic(False):
        var = run_workload(wl, tick_mode=TickMode.PARATICK, seed=seed)
    return AblationRow("keep-timer-on-idle-exit OFF", var.total_exits, ref.total_exits)


def ablate_last_tick_heuristic(*, seed: int = 0) -> AblationRow:
    """Paratick with vs without §5.1's last-tick update heuristic.

    The cost of disabling it is *redundant virtual ticks*: the guest
    already received a timer interrupt that performs tick work, and the
    host injects vector 235 on top. We therefore compare injected
    virtual ticks (exit counts barely move — injection rides on entries
    that happen anyway, which is the whole point of the design).
    """
    # A sleepy workload whose wake-ups *are* guest timer interrupts —
    # exactly the entries §5.1's heuristic covers (sync wake-ups arrive
    # as IPIs and never trigger it).
    from repro.sim.timebase import MSEC
    from repro.workloads.micro import IdlePeriodWorkload

    wl = IdlePeriodWorkload(6 * MSEC, iterations=250, work_cycles=500_000)
    ref = run_workload(wl, tick_mode=TickMode.PARATICK, seed=seed)
    var = run_workload(
        wl,
        tick_mode=TickMode.PARATICK,
        seed=seed,
        features=HostFeatures(paratick_last_tick_heuristic=False),
    )
    return AblationRow(
        "last-tick heuristic OFF (virtual ticks)",
        int(var.extra["virtual_ticks"]),
        max(1, int(ref.extra["virtual_ticks"])),
    )


@dataclass
class HaltPollRow:
    poll_ns: int
    exec_time_ns: int
    poll_cycles: int
    total_cycles: int


def ablate_halt_polling(*, poll_windows=(0, 50_000, 200_000), seed: int = 0) -> list[HaltPollRow]:
    """Why the paper disabled halt polling: cycles burned vs time saved."""
    from repro.hw.cpu import CycleDomain

    rows = []
    wl = SyncStormWorkload(threads=4, events_per_second=3000.0, duration_cycles=200_000_000)
    for poll in poll_windows:
        m = run_workload(
            wl,
            tick_mode=TickMode.TICKLESS,
            seed=seed,
            features=HostFeatures(halt_poll_ns=poll),
        )
        poll_ns = m.ledger.get(CycleDomain.HALT_POLL, 0)
        rows.append(
            HaltPollRow(
                poll_ns=poll,
                exec_time_ns=m.exec_time_ns,
                poll_cycles=int(poll_ns * 2.2),
                total_cycles=m.total_cycles,
            )
        )
    return rows


@dataclass
class MismatchRow:
    host_hz: int
    guest_hz: int
    #: §4.1 preemption-timer backstop enabled?
    rate_adapt: bool
    #: Virtual ticks the guest actually received per second while active.
    delivered_hz: float
    total_exits: int


def ablate_frequency_mismatch(*, seed: int = 0) -> list[MismatchRow]:
    """§4.1: tick delivery when host and guest frequencies differ.

    Paratick injects on VM entry; when the host ticks slower than the
    guest expects, delivery degrades toward the host rate for purely
    CPU-bound guests. The paper's general design (left as future work in
    its implementation) arms the preemption timer as a backstop — we
    implement it behind ``HostFeatures.paratick_rate_adapt`` and measure
    both variants: the backstop restores the declared rate at the price
    of backstop exits.
    """
    rows = []
    for host_hz in (100, 250, 1000):
        for adapt in (False, True):
            wl = benchmark("swaptions", target_cycles=400_000_000)
            m = run_workload(
                wl,
                tick_mode=TickMode.PARATICK,
                seed=seed,
                noise=False,
                machine_spec=MachineSpec(host_tick_hz=host_hz),
                features=HostFeatures(paratick_rate_adapt=adapt),
            )
            secs = m.exec_time_ns / SEC
            delivered = m.extra["virtual_ticks"] / secs
            rows.append(
                MismatchRow(
                    host_hz=host_hz,
                    guest_hz=250,
                    rate_adapt=adapt,
                    delivered_hz=delivered,
                    total_exits=m.total_exits,
                )
            )
    return rows


@dataclass
class EoiRow:
    virtual_eoi: bool
    exit_reduction: float
    base_exits: int


def ablate_virtual_eoi(*, seed: int = 0) -> list[EoiRow]:
    """Paratick's benefit on pre-APICv hosts (EOI writes trap).

    Trapped EOIs add one exit per handled interrupt *in every mode*,
    diluting the relative exit reduction but leaving paratick's absolute
    savings intact — the mechanism is orthogonal to EOI virtualization.
    """
    wl = SyncStormWorkload(threads=4, events_per_second=2000.0, duration_cycles=200_000_000)
    rows = []
    for veoi in (True, False):
        features = HostFeatures(virtual_eoi=veoi)
        base = run_workload(wl, tick_mode=TickMode.TICKLESS, seed=seed, features=features)
        cand = run_workload(wl, tick_mode=TickMode.PARATICK, seed=seed, features=features)
        rows.append(
            EoiRow(
                virtual_eoi=veoi,
                exit_reduction=cand.total_exits / base.total_exits - 1.0,
                base_exits=base.total_exits,
            )
        )
    return rows


@dataclass
class SensitivityRow:
    pollution_cycles: int
    throughput_gain: float
    exit_reduction: float


def ablate_exit_cost_sensitivity(
    *, pollutions=(10_000, 55_000, 150_000), seed: int = 0
) -> list[SensitivityRow]:
    """How the headline throughput gain scales with per-exit cost.

    Exit *counts* are mechanical and do not move with the cost model;
    the throughput gain is linear-ish in the per-exit cost. This sweep
    quantifies the calibration discussion in EXPERIMENTS.md: matching
    the paper's +13 % (Table 3 medium) needs a per-exit cost beyond what
    published measurements support; the default (55k cycles) is the
    defensible middle.
    """
    from repro.workloads.parsec import benchmark

    rows = []
    for pollution in pollutions:
        costs = DEFAULT_COSTS.with_overrides(pollution=pollution)
        wl = benchmark("streamcluster", threads=8, target_cycles=100_000_000)
        base = run_workload(wl, tick_mode=TickMode.TICKLESS, seed=seed, costs=costs)
        cand = run_workload(wl, tick_mode=TickMode.PARATICK, seed=seed, costs=costs)
        rows.append(
            SensitivityRow(
                pollution_cycles=pollution,
                throughput_gain=base.total_cycles / cand.total_cycles - 1.0,
                exit_reduction=cand.total_exits / base.total_exits - 1.0,
            )
        )
    return rows


def ablate_did(*, seed: int = 0, machine_cpus: int = 16) -> tuple[DidEstimate, float, RunMetrics, RunMetrics]:
    """DID vs paratick on a sync-heavy workload (§7's trade-off)."""
    wl = SyncStormWorkload(threads=8, events_per_second=8000.0, duration_cycles=200_000_000)
    base = run_workload(wl, tick_mode=TickMode.TICKLESS, seed=seed)
    para = run_workload(wl, tick_mode=TickMode.PARATICK, seed=seed)
    c = DEFAULT_COSTS
    est = estimate_did(
        base,
        para,
        machine_cpus=machine_cpus,
        exit_cost_cycles=c.vmexit_hw + c.handler_external_interrupt + c.vmentry_hw + c.pollution,
        clock_hz=2_200_000_000,
    )
    gross = est.throughput_without_core_loss
    return est, crossover_cpus(gross), base, para
