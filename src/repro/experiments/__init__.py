"""Experiment runners: one module per paper table/figure, plus scenario
helpers, the A/B comparison driver and the ablation suite."""

from repro.experiments.runner import (
    run_comparison,
    run_replicated_comparison,
    run_workload,
)

__all__ = ["run_workload", "run_comparison", "run_replicated_comparison"]
