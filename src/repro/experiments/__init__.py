"""Experiment runners: one module per paper table/figure, plus scenario
helpers, the A/B comparison driver, the parallel grid engine and the
ablation suite."""

from repro.experiments.parallel import (
    GridResult,
    RunSpec,
    WorkloadSpec,
    run_grid,
)
from repro.experiments.runner import (
    run_comparison,
    run_replicated_comparison,
    run_workload,
)

__all__ = [
    "run_workload",
    "run_comparison",
    "run_replicated_comparison",
    "RunSpec",
    "WorkloadSpec",
    "GridResult",
    "run_grid",
]
