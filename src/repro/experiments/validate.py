"""Quick self-validation battery (`python -m repro validate`).

Runs a fast subset of the reproduction's load-bearing invariants so a
user can confirm an installation behaves before launching the full
benchmark suite (~1 minute instead of ~20).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.config import TickMode
from repro.core.model import TABLE1_PAPER, table1_row
from repro.experiments.runner import run_comparison, run_workload
from repro.sim.timebase import SEC
from repro.workloads.micro import IdleWorkload, PingPongWorkload, SyncStormWorkload


@dataclass
class CheckResult:
    name: str
    passed: bool
    detail: str


def _check(name: str, fn: Callable[[], str]) -> CheckResult:
    try:
        return CheckResult(name, True, fn())
    except AssertionError as e:
        return CheckResult(name, False, str(e))


def check_table1() -> str:
    for w, paper in TABLE1_PAPER.items():
        got = table1_row(w)
        assert got == paper, f"{w}: {got} != paper {paper}"
    return "all four rows exact"


def check_determinism() -> str:
    def fp():
        m = run_workload(PingPongWorkload(rounds=100), seed=13)
        return (m.exec_time_ns, m.total_exits, m.total_cycles)

    a, b = fp(), fp()
    assert a == b, f"{a} != {b}"
    return f"bit-identical runs (exits={a[1]})"


def check_idle_quiet() -> str:
    m = run_workload(IdleWorkload(vcpus=4), tick_mode=TickMode.TICKLESS,
                     noise=False, horizon_ns=SEC // 2)
    assert m.total_exits < 60, f"{m.total_exits} exits on an idle tickless VM"
    p = run_workload(IdleWorkload(vcpus=4), tick_mode=TickMode.PERIODIC,
                     noise=False, horizon_ns=SEC // 2)
    assert p.total_exits > 400, f"periodic idle VM too quiet ({p.total_exits})"
    return f"tickless idle {m.total_exits} exits vs periodic {p.total_exits}"


def check_paratick_wins_sync() -> str:
    wl = SyncStormWorkload(threads=4, events_per_second=3000.0, duration_cycles=120_000_000)
    comp, base, cand = run_comparison(wl, seed=5)
    assert comp.vm_exits < -0.15, f"exits only {comp.vm_exits:+.1%}"
    assert comp.throughput > 0.0, f"throughput {comp.throughput:+.1%}"
    assert cand.timer_exits <= base.timer_exits, "§4.2 guarantee violated"
    return f"exits {comp.vm_exits:+.1%}, throughput {comp.throughput:+.1%}"


def check_sanitizer() -> str:
    """All three tick modes run sanitizer-clean on a blocking workload,
    and the trace reconciles against counters and the cycle ledger."""
    from repro.analysis.checkers import TickSanitizer
    from repro.analysis.reconcile import reconcile_run
    from repro.config import MachineSpec

    mspec = MachineSpec(sockets=1, cpus_per_socket=4)
    events = 0
    for mode in TickMode:
        sanitizer = TickSanitizer(mode=mode)
        internals: dict = {}

        def inspect(sim, machine, hv, vm) -> None:
            internals["machine"], internals["now"] = machine, sim.now

        m = run_workload(
            PingPongWorkload(rounds=150), tick_mode=mode, seed=7,
            machine_spec=mspec, pinned_cpus=(0, 1),
            tracer=sanitizer, inspect=inspect,
        )
        bad = [str(v) for v in sanitizer.finish()]
        bad += reconcile_run(sanitizer, m, freq_hz=mspec.freq_hz,
                             machine=internals["machine"], now_ns=internals["now"])
        assert not bad, f"{mode.value}: {bad[:3]}"
        assert sanitizer.events > 0, f"{mode.value}: no trace events seen"
        events += sanitizer.events
    return f"3 modes clean ({events} events checked)"


def check_fuzz_seed() -> str:
    """One full differential fuzz cell (seed 0) stays clean."""
    from repro.analysis.fuzz import fuzz_seed

    report = fuzz_seed(0)
    assert report.ok, report.problems[:3]
    return f"seed 0: {report.runs} runs, {report.events} events, 0 violations"


def check_observability(artifacts_dir=None) -> str:
    """The virtual-perf stack, end to end on an overcommitted run:
    sample counts reconcile exactly with the cycle ledger, steal
    reconciles against the runtime counters and the busy timeline, and
    the exported Chrome trace passes schema validation.

    With ``artifacts_dir``, the exported trace and collapsed-stack
    profile are written there (CI uploads them as workflow artifacts).
    """
    from repro.config import MachineSpec
    from repro.obs import ObsConfig, Observability
    from repro.obs.export import validate_chrome_trace, write_chrome_trace

    mspec = MachineSpec(sockets=1, cpus_per_socket=1)
    obs = Observability(ObsConfig(trace_export=True))
    internals: dict = {}

    def inspect(sim, machine, hv, vm) -> None:
        internals["machine"], internals["now"] = machine, sim.now
        internals["hv"] = hv

    m = run_workload(
        PingPongWorkload(rounds=150), tick_mode=TickMode.TICKLESS, seed=7,
        machine_spec=mspec, pinned_cpus=(0, 0), obs=obs, inspect=inspect,
    )
    machine, hv, now = internals["machine"], internals["hv"], internals["now"]
    for cpu in machine.cpus:
        want = cpu.busy_ns() // obs.profiler.period_ns
        got = obs.profiler.samples_on(cpu.index)
        assert got == want, f"pCPU{cpu.index}: {got} samples, ledger says {want}"
    assert m.steal_ns > 0, "overcommitted ping-pong produced no steal"
    bad = obs.steal.reconcile_runtime(hv)
    bad += obs.steal.reconcile_timeline(machine, now)
    assert not bad, bad[:3]
    doc = obs.chrome_trace()
    errors = validate_chrome_trace(doc)
    assert not errors, errors[:3]
    if artifacts_dir is not None:
        import os

        os.makedirs(artifacts_dir, exist_ok=True)
        write_chrome_trace(doc, os.path.join(artifacts_dir, "pingpong.trace.json"))
        with open(os.path.join(artifacts_dir, "pingpong.collapsed"), "w") as fh:
            fh.write("\n".join(obs.profiler.collapsed()) + "\n")
    return (
        f"{obs.profiler.total_samples} samples ledger-exact, "
        f"steal {m.steal_ns / 1e6:.2f} ms reconciled, "
        f"{len(doc['traceEvents'])} trace events valid"
    )


ALL_CHECKS = (
    ("Table 1 closed forms", check_table1),
    ("determinism", check_determinism),
    ("idle VM behaviour", check_idle_quiet),
    ("paratick vs tickless on blocking sync", check_paratick_wins_sync),
    ("tick sanitizer battery", check_sanitizer),
    ("differential fuzz (seed 0)", check_fuzz_seed),
    ("virtual-perf observability", check_observability),
)


def run_all(artifacts_dir=None) -> list[CheckResult]:
    results = []
    for name, fn in ALL_CHECKS:
        if fn is check_observability:
            results.append(_check(name, lambda: check_observability(artifacts_dir)))
        else:
            results.append(_check(name, fn))
    return results
