"""CSV export of the data series behind each figure.

The paper's Figs. 4–6 are bar charts of per-benchmark relative metrics.
This module writes those series as CSV (one row per benchmark/category,
one column per metric) so they can be plotted with any tool — the
figure-regeneration path for environments without plotting libraries.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable, Optional, Union

from repro.metrics.report import Comparison

PathLike = Union[str, Path]


def comparisons_to_csv(
    comparisons: Iterable[Comparison],
    *,
    metric_names: tuple[str, str, str] = ("vm_exits", "throughput", "exec_time"),
) -> str:
    """Render comparisons as CSV text (label + three relative metrics)."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(("label",) + metric_names)
    for c in comparisons:
        writer.writerow([c.label, f"{c.vm_exits:.6f}", f"{c.throughput:.6f}", f"{c.exec_time:.6f}"])
    return buf.getvalue()


def write_csv(path: PathLike, comparisons: Iterable[Comparison], **kw) -> Path:
    """Write a comparison series to ``path``; returns the path."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(comparisons_to_csv(comparisons, **kw))
    return p


def export_fig4(out_dir: PathLike, *, target_cycles: int = 200_000_000, seed: int = 0) -> Path:
    """Per-benchmark series of Fig. 4 (sequential PARSEC)."""
    from repro.experiments import table2_fig4

    result = table2_fig4.run(target_cycles=target_cycles, seed=seed)
    return write_csv(Path(out_dir) / "fig4_sequential_parsec.csv",
                     result.per_benchmark + [result.aggregate])


def export_fig5(
    out_dir: PathLike,
    *,
    sizes: Optional[tuple[str, ...]] = None,
    target_cycles: Optional[int] = None,
    seed: int = 0,
) -> list[Path]:
    """Per-benchmark series of Fig. 5, one file per VM size."""
    from repro.experiments import table3_fig5
    from repro.experiments.scenarios import VM_SIZES

    wanted = sizes or tuple(s.name for s in VM_SIZES)
    out = []
    for size in VM_SIZES:
        if size.name not in wanted:
            continue
        res = table3_fig5.run_size(size, target_cycles=target_cycles, seed=seed)
        out.append(
            write_csv(
                Path(out_dir) / f"fig5_parallel_parsec_{size.name}.csv",
                res.per_benchmark + [res.aggregate],
            )
        )
    return out


def export_fig6(out_dir: PathLike, *, total_bytes: int = 8 << 20, seed: int = 0) -> Path:
    """Per-category series of Fig. 6 (fio)."""
    from repro.experiments import table4_fig6

    result = table4_fig6.run(total_bytes=total_bytes, seed=seed)
    return write_csv(
        Path(out_dir) / "fig6_fio.csv",
        result.per_category + [result.aggregate],
        metric_names=("vm_exits", "io_throughput", "exec_time"),
    )
