"""The experiment driver: build a stack, run a workload, measure.

:func:`run_workload` is the single entry point every benchmark, example
and integration test uses; :func:`run_comparison` performs the A/B
(tickless vs paratick) measurement the paper's figures are built from,
guaranteeing both runs share machine, seed and workload parameters.
"""

from __future__ import annotations

from typing import Optional

from repro.config import HostFeatures, IoDeviceKind, MachineSpec, TickMode, VmSpec
from repro.guest.kernel import GuestKernel
from repro.guest.noise import install_noise
from repro.host.costs import DEFAULT_COSTS, CostModel
from repro.host.kvm import Hypervisor
from repro.hw.block import make_block_device
from repro.hw.cpu import Machine
from repro.metrics.perf import RunMetrics, collect_metrics
from repro.metrics.report import Comparison, compare_runs
from repro.sim.engine import Simulator
from repro.sim.timebase import SEC
from repro.workloads.base import Workload, WorkloadResult

#: Default wall-clock bound on a run (simulated).
DEFAULT_HORIZON_NS = 60 * SEC


def run_workload(
    workload: Workload,
    *,
    tick_mode: TickMode = TickMode.TICKLESS,
    vcpus: Optional[int] = None,
    pinned_cpus: Optional[tuple[int, ...]] = None,
    machine_spec: Optional[MachineSpec] = None,
    features: HostFeatures = HostFeatures(),
    costs: CostModel = DEFAULT_COSTS,
    tick_hz: int = 250,
    seed: int = 0,
    noise: bool = True,
    cpuidle: bool = False,
    device_kind: Optional[IoDeviceKind] = None,
    horizon_ns: int = DEFAULT_HORIZON_NS,
    label: Optional[str] = None,
    perturbations=(),
    arch: str = "x86",
    tracer=None,
    inspect=None,
    obs=None,
) -> RunMetrics:
    """Run one workload in one VM and return its metrics.

    The run ends when every main task finishes (execution time = that
    instant) or at ``horizon_ns`` for open-ended workloads; a workload
    with main tasks that misses the horizon raises
    :class:`~repro.errors.WorkloadError` rather than reporting a
    truncated measurement.

    ``inspect``, when given, is called as ``inspect(sim, machine, hv,
    vm)`` after the run ends but before metrics collection — the
    sanitizer's reconciliation pass uses it to reach simulator internals
    (per-CPU ledgers) that :class:`RunMetrics` aggregates away.

    ``obs``, when given, is a :class:`repro.obs.Observability` bundle:
    its trace sinks are teed in front of ``tracer``, its sampling
    profiler observes the cycle ledger, and it is finalized before
    metrics collection. Observability never schedules simulator events,
    so metrics are bit-identical with ``obs`` on or off.

    ``perturbations``, when non-empty, is a schedule of
    :class:`repro.host.perturb.Perturbation` events (suspend/resume,
    save/restore, vCPU hotplug, clock drift) installed against the VM
    before boot; the run's metrics then carry the perturbation counters
    in :attr:`RunMetrics.extra`.
    """
    nvcpus = vcpus if vcpus is not None else workload.default_vcpus()
    mspec = machine_spec or MachineSpec()
    if pinned_cpus is None:
        pinned_cpus = tuple(range(nvcpus))
    if obs is not None:
        tracer = obs.tracer(tracer)
    sim = Simulator(seed=seed, tracer=tracer)
    machine = Machine(sim, mspec)
    hv = Hypervisor(sim, machine, costs=costs, features=features, arch=arch)
    if obs is not None:
        obs.install(machine, hv)
    vm = hv.create_vm(
        VmSpec(
            name="vm0",
            vcpus=nvcpus,
            tick_mode=tick_mode,
            tick_hz=tick_hz,
            pinned_cpus=pinned_cpus,
            noise=noise,
            cpuidle=cpuidle,
            arch=arch,
        )
    )
    kernel = GuestKernel(vm)

    kind = device_kind or workload.io_device
    if kind is not None:
        device = make_block_device(
            sim,
            kind,
            lambda req: hv.complete_io_request(vm, req.cookie[0], req),
        )
        kernel.attach_block_device(device)

    nic_profile = getattr(workload, "nic_profile", None)
    if nic_profile is not None:
        from repro.hw.interrupts import Vector
        from repro.hw.nic import Nic

        nic = Nic(
            sim,
            nic_profile,
            lambda req: hv.complete_io_request(vm, req.cookie[0], req, vector=Vector.NET_IO),
        )
        kernel.attach_nic(nic)

    if noise:
        install_noise(kernel)

    main_tasks = workload.build(kernel)
    result = WorkloadResult(main_tasks=list(main_tasks))
    main_set = set(id(t) for t in main_tasks)

    def on_done(task) -> None:
        if id(task) in main_set:
            result.finished += 1
            if result.finished == len(result.main_tasks):
                result.completed_at_ns = sim.now
                sim.stop()

    kernel.task_done_callbacks.append(on_done)

    if perturbations:
        from repro.host.perturb import install_perturbations

        install_perturbations(hv, vm, perturbations)

    hv.start()
    sim.run(until=horizon_ns)

    if result.main_tasks:
        result.check_complete()
        exec_time = result.completed_at_ns
    else:
        exec_time = sim.now  # open-ended workload: ran to the horizon

    if obs is not None:
        obs.finalize(sim, machine, hv)

    if inspect is not None:
        inspect(sim, machine, hv, vm)

    extra = {
        "vcpus": nvcpus,
        "seed": seed,
        "virtual_ticks": vm.virtual_ticks_injected,
        "halt_episodes": sum(v.halt_episodes for v in vm.vcpus),
        "halted_ns": sum(v.total_halted_ns for v in vm.vcpus),
        "steal_ns": sum(v.total_steal_ns for v in vm.vcpus),
        "steal_episodes": sum(v.steal_episodes for v in vm.vcpus),
    }
    if perturbations:
        # Only perturbed runs carry these keys, so unperturbed metrics
        # stay bit-identical to the pre-perturbation engine.
        extra["suspend_count"] = vm.suspend_count
        extra["suspended_ns"] = vm.total_suspended_ns
        extra["clock_jump_ns"] = vm.clock_jump_ns
        extra["clock_offset_ns"] = vm.guest_clock_offset_ns
        extra["hotplug_count"] = vm.hotplug_count
        extra["unplug_count"] = vm.unplug_count
    from repro.host.vcpu import VcpuState

    for v in vm.vcpus:
        residency = dict(v.cstate_residency_ns)
        if v.state is VcpuState.HALTED and v.requested_cstate is not None:
            # Still asleep at collection time: flush the open residency.
            name = v.requested_cstate.name
            residency[name] = residency.get(name, 0) + (sim.now - v.halted_since_ns)
        for state, ns in residency.items():
            extra[f"cstate_{state}_ns"] = extra.get(f"cstate_{state}_ns", 0) + ns
    return collect_metrics(
        label or f"{workload.name}/{tick_mode.value}",
        machine,
        [vm],
        exec_time_ns=exec_time,
        extra=extra,
    )


def run_comparison(
    workload: Workload,
    *,
    baseline: TickMode = TickMode.TICKLESS,
    candidate: TickMode = TickMode.PARATICK,
    label: Optional[str] = None,
    **kwargs,
) -> tuple[Comparison, RunMetrics, RunMetrics]:
    """A/B run of a workload under two tick modes with shared parameters.

    This is the paper's measurement: the same workload, the same
    machine, the same seed — only the guest's tick management differs.
    A caller-supplied ``label`` names the comparison *and* is propagated
    into both runs' metrics (as ``label/<mode>``), so per-seed runs stay
    attributable when replicated or cached.
    """
    stem = label or workload.name
    base = run_workload(
        workload, tick_mode=baseline, label=f"{stem}/{baseline.value}", **kwargs
    )
    cand = run_workload(
        workload, tick_mode=candidate, label=f"{stem}/{candidate.value}", **kwargs
    )
    return compare_runs(base, cand, stem), base, cand


def run_replicated_comparison(
    workload: Workload,
    *,
    seeds: tuple[int, ...] = (0, 1, 2),
    label: Optional[str] = None,
    jobs: Optional[int] = None,
    cache_dir=None,
    use_cache: bool = False,
    progress=None,
    **kwargs,
) -> tuple[Comparison, dict[str, float]]:
    """The paper's methodology (§6): repeat each experiment over several
    seeds and report the mean; the per-metric standard deviations are
    returned alongside ("a deviation of 5% is possible due to the
    multitude of non-deterministic factors").

    The (seed x tick-mode) grid runs through the parallel experiment
    engine (:mod:`repro.experiments.parallel`): ``jobs=N`` fans the
    replicas out over worker processes and ``use_cache``/``cache_dir``
    reuse previously computed cells. Workloads the engine cannot
    describe declaratively (or a live ``tracer``) fall back to the
    serial in-process loop.

    Returns the mean comparison and a dict of standard deviations
    (``vm_exits`` / ``throughput`` / ``exec_time``).

    Raises:
        ValueError: if ``seeds`` is empty — a replication without at
            least one seed has no defined mean.
    """
    from repro.sim.stats import OnlineStats

    if not seeds:
        raise ValueError("need at least one seed")
    baseline = kwargs.pop("baseline", TickMode.TICKLESS)
    candidate = kwargs.pop("candidate", TickMode.PARATICK)
    stem = label or workload.name
    comparisons = _replicated_comparisons(
        workload, seeds=seeds, stem=stem, baseline=baseline, candidate=candidate,
        jobs=jobs, cache_dir=cache_dir, use_cache=use_cache, progress=progress,
        **kwargs,
    )
    stats = {m: OnlineStats() for m in ("vm_exits", "throughput", "exec_time")}
    for comp in comparisons:
        stats["vm_exits"].add(comp.vm_exits)
        stats["throughput"].add(comp.throughput)
        stats["exec_time"].add(comp.exec_time)
    mean = Comparison(
        label=stem,
        vm_exits=stats["vm_exits"].mean,
        throughput=stats["throughput"].mean,
        exec_time=stats["exec_time"].mean,
    )
    sds = {m: (s.stdev if s.n > 1 else 0.0) for m, s in stats.items()}
    return mean, sds


def _replicated_comparisons(
    workload: Workload,
    *,
    seeds: tuple[int, ...],
    stem: str,
    baseline: TickMode,
    candidate: TickMode,
    jobs: Optional[int],
    cache_dir,
    use_cache: bool,
    progress,
    **kwargs,
) -> list[Comparison]:
    """Per-seed comparisons, engine-first with a serial fallback."""
    from repro.experiments import parallel

    try:
        pairs = []
        specs = []
        for seed in seeds:
            b = parallel.spec_for(
                workload, tick_mode=baseline, seed=seed,
                label=f"{stem}/{baseline.value}", **kwargs,
            )
            c = parallel.spec_for(
                workload, tick_mode=candidate, seed=seed,
                label=f"{stem}/{candidate.value}", **kwargs,
            )
            pairs.append((b, c))
            specs += [b, c]
    except parallel.GridError:
        # Not expressible as a declarative grid: run serially in-process.
        return [
            run_comparison(
                workload, seed=seed, label=stem,
                baseline=baseline, candidate=candidate, **kwargs,
            )[0]
            for seed in seeds
        ]
    grid = parallel.run_grid(
        specs, jobs=jobs, cache_dir=cache_dir, use_cache=use_cache, progress=progress
    ).raise_if_failed()
    return [compare_runs(grid[b], grid[c], stem) for b, c in pairs]
