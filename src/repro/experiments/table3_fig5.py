"""Table 3 + Figure 5 — multithreaded PARSEC in three VM sizes (§6.2).

The paper's scenarios: small (4 vCPUs, 1 socket), medium (16 vCPUs,
2 sockets), large (64 vCPUs, 4 sockets); parallelism equals the vCPU
count. Paper Table 3:

    small   −42 % exits   +12 % throughput   −1 % exec time
    medium  −47 % exits   +13 % throughput   −3 % exec time
    large   −44 % exits   +16 % throughput   −1 % exec time
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.parallel import WorkloadSpec, ab_specs, compare_from_grid, run_grid
from repro.experiments.scenarios import VM_SIZES, VmSize, pins_for_size
from repro.metrics.aggregate import aggregate_improvements
from repro.metrics.report import Comparison, format_table
from repro.workloads import parsec

#: The paper's Table 3 (exits, throughput, exec time).
PAPER_TABLE3 = {
    "small": (-0.42, +0.12, -0.01),
    "medium": (-0.47, +0.13, -0.03),
    "large": (-0.44, +0.16, -0.01),
}

#: Per-thread work budgets chosen so the large scenario stays tractable
#: (results are rates; run length does not change the relative numbers).
DEFAULT_BUDGETS = {"small": 500_000_000, "medium": 300_000_000, "large": 120_000_000}


@dataclass
class Fig5Result:
    size: VmSize
    per_benchmark: list[Comparison]
    aggregate: Comparison

    def render(self) -> str:
        rows = [c.row() for c in self.per_benchmark]
        rows.append(self.aggregate.row())
        p = PAPER_TABLE3[self.size.name]
        return format_table(
            ["benchmark", "VM exits", "throughput", "exec time"],
            rows,
            title=(
                f"Fig. 5 / Table 3 [{self.size.name}: {self.size.vcpus} vCPUs, "
                f"{self.size.sockets_used} socket(s)] — paratick vs tickless\n"
                f"(paper: {p[0]:+.0%} exits, {p[1]:+.0%} throughput, {p[2]:+.0%} exec time)"
            ),
        )


def run_size(
    size: VmSize,
    *,
    benches: tuple[str, ...] = parsec.BENCHMARK_NAMES,
    target_cycles: int | None = None,
    seed: int = 0,
    jobs: int | None = None,
    cache_dir=None,
    use_cache: bool = False,
    progress=None,
    telemetry=None,
) -> Fig5Result:
    """One VM-size scenario across the benchmark list.

    The benchmark x tick-mode grid runs through the parallel experiment
    engine (``jobs``/cache aware; see :mod:`repro.experiments.parallel`).
    """
    budget = target_cycles if target_cycles is not None else DEFAULT_BUDGETS[size.name]
    pins = pins_for_size(size)
    pairs = []
    specs = []
    for bench in benches:
        ws = WorkloadSpec.make(
            "parsec", name=bench, threads=size.vcpus, target_cycles=budget
        )
        b, c = ab_specs(ws, seed=seed, pinned_cpus=pins, label=f"{size.name}.{bench}")
        pairs.append((bench, b, c))
        specs += [b, c]
    grid = run_grid(
        specs, jobs=jobs, cache_dir=cache_dir, use_cache=use_cache,
        progress=progress, telemetry=telemetry,
    ).raise_if_failed()
    comps = [compare_from_grid(grid, b, c, bench) for bench, b, c in pairs]
    return Fig5Result(size, comps, aggregate_improvements(comps, label=f"average ({size.name})"))


def run_all(**kwargs) -> list[Fig5Result]:
    """All three scenarios (the full Table 3)."""
    return [run_size(size, **kwargs) for size in VM_SIZES]
