"""Table 2 + Figure 4 — sequential PARSEC, paratick vs vanilla (§6.1).

Figure 4 shows three per-benchmark panels (VM exits, system throughput,
execution time, all relative to tickless Linux); Table 2 is the suite
average: paper values **−50 % exits, +7 % throughput, −2 % execution
time**. One call to :func:`run` regenerates both: the per-benchmark rows
are the figure's series, the aggregate row is the table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.parallel import WorkloadSpec, ab_specs, compare_from_grid, run_grid
from repro.metrics.aggregate import aggregate_improvements
from repro.metrics.report import Comparison, format_table
from repro.workloads import parsec

#: The paper's Table 2.
PAPER_TABLE2 = {"vm_exits": -0.50, "throughput": +0.07, "exec_time": -0.02}


@dataclass
class Fig4Result:
    per_benchmark: list[Comparison]
    aggregate: Comparison

    def render(self) -> str:
        rows = [c.row() for c in self.per_benchmark]
        rows.append(self.aggregate.row())
        return format_table(
            ["benchmark", "VM exits", "throughput", "exec time"],
            rows,
            title=(
                "Fig. 4 / Table 2 — sequential PARSEC, paratick vs tickless\n"
                f"(paper averages: {PAPER_TABLE2['vm_exits']:+.0%} exits, "
                f"{PAPER_TABLE2['throughput']:+.0%} throughput, "
                f"{PAPER_TABLE2['exec_time']:+.0%} exec time)"
            ),
        )


def run(
    *,
    target_cycles: int = 300_000_000,
    seed: int = 0,
    jobs: int | None = None,
    cache_dir=None,
    use_cache: bool = False,
    progress=None,
    telemetry=None,
) -> Fig4Result:
    """Run all 13 benchmarks sequentially in both modes.

    The 13 x 2 grid goes through the parallel experiment engine:
    ``jobs=N`` fans benchmarks out over worker processes, and the
    result cache (``use_cache``/``cache_dir``) re-executes only cells
    whose spec changed since the last sweep.
    """
    pairs = []
    specs = []
    for bench in parsec.BENCHMARK_NAMES:
        ws = WorkloadSpec.make("parsec", name=bench, target_cycles=target_cycles)
        b, c = ab_specs(ws, seed=seed, label=bench)
        pairs.append((bench, b, c))
        specs += [b, c]
    grid = run_grid(
        specs, jobs=jobs, cache_dir=cache_dir, use_cache=use_cache,
        progress=progress, telemetry=telemetry,
    ).raise_if_failed()
    comps = [compare_from_grid(grid, b, c, bench) for bench, b, c in pairs]
    return Fig4Result(comps, aggregate_improvements(comps, label="average (Table 2)"))
