"""Table 2 + Figure 4 — sequential PARSEC, paratick vs vanilla (§6.1).

Figure 4 shows three per-benchmark panels (VM exits, system throughput,
execution time, all relative to tickless Linux); Table 2 is the suite
average: paper values **−50 % exits, +7 % throughput, −2 % execution
time**. One call to :func:`run` regenerates both: the per-benchmark rows
are the figure's series, the aggregate row is the table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runner import run_comparison
from repro.metrics.aggregate import aggregate_improvements
from repro.metrics.report import Comparison, format_table
from repro.workloads import parsec

#: The paper's Table 2.
PAPER_TABLE2 = {"vm_exits": -0.50, "throughput": +0.07, "exec_time": -0.02}


@dataclass
class Fig4Result:
    per_benchmark: list[Comparison]
    aggregate: Comparison

    def render(self) -> str:
        rows = [c.row() for c in self.per_benchmark]
        rows.append(self.aggregate.row())
        return format_table(
            ["benchmark", "VM exits", "throughput", "exec time"],
            rows,
            title=(
                "Fig. 4 / Table 2 — sequential PARSEC, paratick vs tickless\n"
                f"(paper averages: {PAPER_TABLE2['vm_exits']:+.0%} exits, "
                f"{PAPER_TABLE2['throughput']:+.0%} throughput, "
                f"{PAPER_TABLE2['exec_time']:+.0%} exec time)"
            ),
        )


def run(*, target_cycles: int = 300_000_000, seed: int = 0) -> Fig4Result:
    """Run all 13 benchmarks sequentially in both modes."""
    comps = []
    for bench in parsec.BENCHMARK_NAMES:
        wl = parsec.benchmark(bench, target_cycles=target_cycles)
        comp, _base, _cand = run_comparison(wl, seed=seed, label=bench)
        comps.append(comp)
    return Fig4Result(comps, aggregate_improvements(comps, label="average (Table 2)"))
