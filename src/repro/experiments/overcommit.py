"""Overcommitted multi-VM scenarios: the full §3.1/§3.3 regime, simulated.

The paper's Table 1 counts are analytical; this module runs the same
W1/W2-style configurations — multiple idle or sync-churning VMs sharing
physical CPUs — on the full simulator with host-scheduler time sharing,
which the single-VM experiment runner does not cover.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import MachineSpec, TickMode, VmSpec
from repro.errors import ConfigError
from repro.guest.kernel import GuestKernel
from repro.guest.noise import install_noise
from repro.host.kvm import Hypervisor
from repro.hw.cpu import Machine
from repro.metrics.counters import ExitCounters
from repro.sim.engine import Simulator
from repro.sim.timebase import SEC


@dataclass
class OvercommitResult:
    """Per-mode measurement of one overcommitted scenario."""

    mode: TickMode
    duration_ns: int
    total_exits: int
    total_busy_ns: int
    host_switches: int

    @property
    def exits_per_second(self) -> float:
        return self.total_exits / (self.duration_ns / SEC)

    @property
    def busy_fraction(self) -> float:
        """Busy time as a fraction of one CPU-second per CPU."""
        return self.total_busy_ns / self.duration_ns


def run_idle_overcommit(
    mode: TickMode,
    *,
    vms: int = 4,
    vcpus_per_vm: int = 4,
    pcpus: int = 2,
    duration_ns: int = SEC,
    noise: bool = False,
    seed: int = 0,
    arch: str = "x86",
) -> OvercommitResult:
    """N idle VMs time-sharing a small set of physical CPUs (W1/W2).

    With classic periodic ticks every vCPU is woken ``f_tick`` times a
    second; with tickless/paratick guests the host stays asleep.
    """
    if vms <= 0 or vcpus_per_vm <= 0 or pcpus <= 0:
        raise ConfigError("vms, vcpus_per_vm and pcpus must be positive")
    sim = Simulator(seed=seed)
    machine = Machine(sim, MachineSpec(sockets=1, cpus_per_socket=pcpus))
    hv = Hypervisor(sim, machine, arch=arch)
    for v in range(vms):
        pins = tuple((v * vcpus_per_vm + i) % pcpus for i in range(vcpus_per_vm))
        vm = hv.create_vm(
            VmSpec(name=f"vm{v}", vcpus=vcpus_per_vm, tick_mode=mode, pinned_cpus=pins, noise=noise, arch=arch)
        )
        kernel = GuestKernel(vm)
        if noise:
            install_noise(kernel)
    hv.start()
    sim.run(until=duration_ns)
    counters = ExitCounters()
    for vm in hv.vms:
        counters = counters.merge(vm.counters)
    return OvercommitResult(
        mode=mode,
        duration_ns=duration_ns,
        total_exits=counters.total,
        total_busy_ns=machine.total_busy_ns() // max(pcpus, 1),
        host_switches=hv.sched.switches,
    )


def compare_modes(
    *,
    jobs: int | None = None,
    cache_dir=None,
    use_cache: bool = False,
    progress=None,
    **kwargs,
) -> dict[TickMode, OvercommitResult]:
    """The W1/W2 comparison across all three tick modes.

    The three scenarios are independent, so they run as a grid through
    the parallel experiment engine — ``jobs=3`` executes all modes
    concurrently, and the result cache makes repeat sweeps incremental.
    """
    from repro.experiments.parallel import OVERCOMMIT_IDLE, RunSpec, WorkloadSpec, run_grid

    seed = kwargs.pop("seed", 0)
    specs = {
        mode: RunSpec(
            WorkloadSpec.make(OVERCOMMIT_IDLE, **kwargs),
            tick_mode=mode, seed=seed, label=f"overcommit/{mode.value}",
        )
        for mode in TickMode
    }
    grid = run_grid(
        list(specs.values()), jobs=jobs, cache_dir=cache_dir,
        use_cache=use_cache, progress=progress,
    ).raise_if_failed()
    return {mode: grid[spec] for mode, spec in specs.items()}
