"""Table 4 + Figure 6 — fio storage workloads (§6.3).

Four categories (seqr / seqwr / rndr / rndwr), each aggregating block
sizes 4 kB–256 kB, on a 1-vCPU VM with a SATA-class SSD model.

Metric note: for these workloads the paper measures **I/O throughput**
directly and argues "Since I/O operations are the sole system
bottleneck, I/O throughput equates to system throughput". We therefore
report throughput as bytes/second (the inverse execution-time ratio),
and additionally expose the cycle-based throughput for reference.

Paper Table 4: **−34 % exits, +20 % throughput, −18 % execution time**;
Fig. 6c additionally shows reads gaining more than writes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import IoDeviceKind
from repro.experiments.parallel import WorkloadSpec, ab_specs, run_grid
from repro.metrics.aggregate import aggregate_improvements
from repro.metrics.perf import RunMetrics
from repro.metrics.report import Comparison, format_table
from repro.workloads import fio

#: The paper's Table 4.
PAPER_TABLE4 = {"vm_exits": -0.34, "throughput": +0.20, "exec_time": -0.18}


@dataclass
class Fig6Result:
    #: One comparison per category (block sizes aggregated), Fig. 6 style.
    per_category: list[Comparison]
    aggregate: Comparison

    def render(self) -> str:
        rows = [c.row() for c in self.per_category]
        rows.append(self.aggregate.row())
        return format_table(
            ["category", "VM exits", "I/O throughput", "exec time"],
            rows,
            title=(
                "Fig. 6 / Table 4 — fio, paratick vs tickless "
                f"(paper averages: {PAPER_TABLE4['vm_exits']:+.0%} exits, "
                f"{PAPER_TABLE4['throughput']:+.0%} throughput, "
                f"{PAPER_TABLE4['exec_time']:+.0%} exec time)"
            ),
        )


def _io_comparison(base: RunMetrics, cand: RunMetrics, label: str) -> Comparison:
    # I/O throughput = bytes / time; same byte count both runs.
    return Comparison(
        label=label,
        vm_exits=cand.total_exits / base.total_exits - 1.0,
        throughput=base.exec_time_ns / cand.exec_time_ns - 1.0,
        exec_time=cand.exec_time_ns / base.exec_time_ns - 1.0,
    )


def run(
    *,
    total_bytes: int = 16 << 20,
    block_sizes: tuple[int, ...] = fio.BLOCK_SIZES,
    device: IoDeviceKind = IoDeviceKind.SATA_SSD,
    seed: int = 0,
    jobs: int | None = None,
    cache_dir=None,
    use_cache: bool = False,
    progress=None,
    telemetry=None,
) -> Fig6Result:
    """The full category x block-size sweep, aggregated per category.

    The category x block-size x tick-mode grid runs through the
    parallel experiment engine (``jobs``/cache aware).
    """
    pairs: dict[str, list] = {cat: [] for cat in fio.CATEGORIES}
    specs = []
    for cat in fio.CATEGORIES:
        for bs in block_sizes:
            ws = WorkloadSpec.make("fio", category=cat, block_size=bs, total_bytes=total_bytes)
            label = f"{cat}.{bs // 1024}k"
            b, c = ab_specs(ws, seed=seed, device_kind=device, label=label)
            pairs[cat].append((label, b, c))
            specs += [b, c]
    grid = run_grid(
        specs, jobs=jobs, cache_dir=cache_dir, use_cache=use_cache,
        progress=progress, telemetry=telemetry,
    ).raise_if_failed()
    per_category = []
    for cat in fio.CATEGORIES:
        comps = [_io_comparison(grid[b], grid[c], label) for label, b, c in pairs[cat]]
        per_category.append(aggregate_improvements(comps, label=cat))
    return Fig6Result(per_category, aggregate_improvements(per_category, label="average (Table 4)"))
