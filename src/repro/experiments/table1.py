"""Table 1 — VM exits of periodic vs tickless for W1–W4 (§3.3).

Two reproductions:

* **analytical** — the §3.1/§3.2 formulas under the bookkeeping
  convention that matches the printed table (see
  :mod:`repro.core.model` for the paper-internal factor-2 note);
* **simulated** — W1 (idle VM) and W3 (sync storm) cross-checked on the
  full simulator at reduced duration, verifying that the mechanical
  exit counts behave like the closed forms predict.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import TickMode
from repro.core.model import TABLE1_PAPER, table1_row
from repro.metrics.report import format_table
from repro.sim.timebase import SEC


@dataclass(frozen=True)
class Table1Row:
    workload: str
    periodic: int
    tickless: int
    paper_periodic: int
    paper_tickless: int

    @property
    def matches_paper(self) -> bool:
        return (self.periodic, self.tickless) == (self.paper_periodic, self.paper_tickless)


def analytical_rows() -> list[Table1Row]:
    """The four printed rows, recomputed from the formulas."""
    rows = []
    for name in ("W1", "W2", "W3", "W4"):
        periodic, tickless = table1_row(name)
        paper_p, paper_t = TABLE1_PAPER[name]
        rows.append(Table1Row(name, periodic, tickless, paper_p, paper_t))
    return rows


def cross_check_specs(*, duration_ns: int = SEC, seed: int = 0):
    """The W1/W3 cross-check as a declarative grid.

    Returns ``(specs, horizon_map)`` where ``specs`` maps
    ``(workload_name, TickMode)`` to its :class:`RunSpec`.
    """
    from repro.experiments.parallel import RunSpec, WorkloadSpec

    w1 = WorkloadSpec.make("micro.idle", vcpus=16)
    w3 = WorkloadSpec.make(
        "micro.syncstorm", threads=16, events_per_second=1000.0,
        duration_cycles=int(2.2e9 * duration_ns / SEC),
    )
    specs = {}
    for mode in (TickMode.PERIODIC, TickMode.TICKLESS):
        specs[("W1", mode)] = RunSpec(
            w1, tick_mode=mode, seed=seed, noise=False,
            horizon_ns=duration_ns, label=f"W1/{mode.value}",
        )
        specs[("W3", mode)] = RunSpec(
            w3, tick_mode=mode, seed=seed, noise=False,
            horizon_ns=10 * duration_ns, label=f"W3/{mode.value}",
        )
    return specs


def simulated_cross_check(
    *,
    duration_ns: int = SEC,
    seed: int = 0,
    jobs: int | None = None,
    cache_dir=None,
    use_cache: bool = False,
    progress=None,
    telemetry=None,
) -> dict[str, dict[str, float]]:
    """Simulate W1 and W3 (1 s) and report exits/s per mode.

    W2/W4 are four copies of W1/W3 and add nothing mechanical; the
    analytical model covers their scaling exactly. The four cells run
    through the parallel experiment engine (``--jobs``/cache aware).
    """
    from repro.experiments.parallel import run_grid

    specs = cross_check_specs(duration_ns=duration_ns, seed=seed)
    grid = run_grid(
        list(specs.values()), jobs=jobs, cache_dir=cache_dir,
        use_cache=use_cache, progress=progress, telemetry=telemetry,
    ).raise_if_failed()

    out: dict[str, dict[str, float]] = {"W1": {}, "W3": {}}
    for (name, mode), spec in specs.items():
        m = grid[spec]
        if name == "W1":
            out[name][mode.value] = m.total_exits / (duration_ns / SEC)
        else:
            out[name][mode.value] = m.total_exits / (m.exec_time_ns / SEC)
    return out


def render() -> str:
    rows = analytical_rows()
    table = format_table(
        ["workload", "periodic", "tickless", "paper periodic", "paper tickless", "match"],
        [
            (r.workload, f"{r.periodic:,}", f"{r.tickless:,}", f"{r.paper_periodic:,}",
             f"{r.paper_tickless:,}", "yes" if r.matches_paper else "NO")
            for r in rows
        ],
        title="Table 1 — tick-management VM exits, periodic vs tickless (10 s, 250 Hz)",
    )
    return table
