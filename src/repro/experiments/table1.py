"""Table 1 — VM exits of periodic vs tickless for W1–W4 (§3.3).

Two reproductions:

* **analytical** — the §3.1/§3.2 formulas under the bookkeeping
  convention that matches the printed table (see
  :mod:`repro.core.model` for the paper-internal factor-2 note);
* **simulated** — W1 (idle VM) and W3 (sync storm) cross-checked on the
  full simulator at reduced duration, verifying that the mechanical
  exit counts behave like the closed forms predict.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import TickMode
from repro.core.model import TABLE1_PAPER, table1_row
from repro.experiments.runner import run_workload
from repro.metrics.report import format_table
from repro.sim.timebase import SEC
from repro.workloads.micro import IdleWorkload, SyncStormWorkload


@dataclass(frozen=True)
class Table1Row:
    workload: str
    periodic: int
    tickless: int
    paper_periodic: int
    paper_tickless: int

    @property
    def matches_paper(self) -> bool:
        return (self.periodic, self.tickless) == (self.paper_periodic, self.paper_tickless)


def analytical_rows() -> list[Table1Row]:
    """The four printed rows, recomputed from the formulas."""
    rows = []
    for name in ("W1", "W2", "W3", "W4"):
        periodic, tickless = table1_row(name)
        paper_p, paper_t = TABLE1_PAPER[name]
        rows.append(Table1Row(name, periodic, tickless, paper_p, paper_t))
    return rows


def simulated_cross_check(*, duration_ns: int = SEC, seed: int = 0) -> dict[str, dict[str, float]]:
    """Simulate W1 and W3 (1 s) and report exits/s per mode.

    W2/W4 are four copies of W1/W3 and add nothing mechanical; the
    analytical model covers their scaling exactly.
    """
    out: dict[str, dict[str, float]] = {}

    w1 = IdleWorkload(vcpus=16)
    out["W1"] = {}
    for mode in (TickMode.PERIODIC, TickMode.TICKLESS):
        m = run_workload(w1, tick_mode=mode, noise=False, horizon_ns=duration_ns, seed=seed)
        out["W1"][mode.value] = m.total_exits / (duration_ns / SEC)

    out["W3"] = {}
    w3 = SyncStormWorkload(threads=16, events_per_second=1000.0,
                           duration_cycles=int(2.2e9 * duration_ns / SEC))
    for mode in (TickMode.PERIODIC, TickMode.TICKLESS):
        m = run_workload(w3, tick_mode=mode, noise=False, horizon_ns=10 * duration_ns, seed=seed)
        out["W3"][mode.value] = m.total_exits / (m.exec_time_ns / SEC)
    return out


def render() -> str:
    rows = analytical_rows()
    table = format_table(
        ["workload", "periodic", "tickless", "paper periodic", "paper tickless", "match"],
        [
            (r.workload, f"{r.periodic:,}", f"{r.tickless:,}", f"{r.paper_periodic:,}",
             f"{r.paper_tickless:,}", "yes" if r.matches_paper else "NO")
            for r in rows
        ],
        title="Table 1 — tick-management VM exits, periodic vs tickless (10 s, 250 Hz)",
    )
    return table
