"""Scenario helpers: vCPU placement and the paper's three VM sizes.

§6.2: "a 'small' VM with 4 vCPUs collocated on the same NUMA socket, a
'medium' VM with 16 vCPUs spread over 2 NUMA sockets, and a 'large' VM
with 64 vCPUs spread over 4 sockets", on the 4x20-CPU testbed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import MachineSpec
from repro.errors import ConfigError


@dataclass(frozen=True)
class VmSize:
    """One of the paper's multithreaded test scenarios."""

    name: str
    vcpus: int
    sockets_used: int


SMALL = VmSize("small", 4, 1)
MEDIUM = VmSize("medium", 16, 2)
LARGE = VmSize("large", 64, 4)
VM_SIZES = (SMALL, MEDIUM, LARGE)


def pin_spread(machine: MachineSpec, vcpus: int, sockets_used: int) -> tuple[int, ...]:
    """Pin ``vcpus`` across the first ``sockets_used`` sockets, evenly.

    small:  4 vCPUs on socket 0;
    medium: 16 vCPUs as 8+8 on sockets 0-1;
    large:  64 vCPUs as 16x4 on sockets 0-3.
    """
    if sockets_used <= 0 or sockets_used > machine.sockets:
        raise ConfigError(f"cannot use {sockets_used} of {machine.sockets} sockets")
    if vcpus % sockets_used:
        raise ConfigError(f"{vcpus} vCPUs do not spread evenly over {sockets_used} sockets")
    per_socket = vcpus // sockets_used
    if per_socket > machine.cpus_per_socket:
        raise ConfigError(
            f"{per_socket} vCPUs per socket exceed the {machine.cpus_per_socket} CPUs available"
        )
    pins = []
    for s in range(sockets_used):
        base = s * machine.cpus_per_socket
        pins.extend(range(base, base + per_socket))
    return tuple(pins)


def pins_for_size(size: VmSize, machine: MachineSpec | None = None) -> tuple[int, ...]:
    """Placement for one of the paper's scenarios on the default testbed."""
    return pin_spread(machine or MachineSpec(), size.vcpus, size.sockets_used)
