"""Cross-architecture table: the paratick win per timer backend.

The paper measures paratick on x86 (TSC-deadline MSR + VMX preemption
timer). The :mod:`repro.hw.timerhw` seam adds an ARM generic-timer
backend (trapped CNTV sysregs + vtimer IRQ, :mod:`repro.hw.arm`) with a
*different* per-program trap bill — arm64 re-arms with a single CVAL
write where x2APIC pays one TSC-deadline WRMSR, and EOI traps through
ICC_EOIR1 unless virtualized. This table re-runs a representative
workload set on **both** backends under all three tick modes and
reports, per (workload, arch):

* total and timer-attributed exits per mode;
* paratick's exit reduction relative to tickless — the paper's headline
  claim, which must *hold on both architectures* even though the
  absolute exit taxonomy differs completely;
* the useful-cycle agreement between backends (tick management and
  timer hardware change overhead, never the work).

All cells run through the parallel experiment engine, so ``--jobs`` and
the content-addressed cache apply; the ARM cells carry ``arch="arm"``
in their cache keys and never collide with x86 cells.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import TickMode
from repro.host.exitreasons import ExitReason
from repro.metrics.perf import RunMetrics
from repro.metrics.report import format_table

#: Architectures compared, reference first.
ARCHES = ("x86", "arm")

#: Exit reasons counted as "timer programming traps" per backend.
PROGRAM_REASONS = {
    "x86": ExitReason.MSR_WRITE,
    "arm": ExitReason.SYSREG_TRAP,
}


def arch_specs(*, seed: int = 0, quick: bool = False):
    """The grid: 2 workloads x 2 arches x 3 modes -> 12 cells.

    Returns ``{(workload_name, arch, TickMode): RunSpec}``. The sync
    storm is the timer-heavy regime (every blocking sync re-programs
    the deadline); the idle-period workload is the §3.2 idle regime
    where periodic ticking dominates.
    """
    from repro.experiments.parallel import RunSpec, WorkloadSpec
    from repro.sim.timebase import USEC

    storm_cycles = 20_000_000 if quick else 60_000_000
    workloads = {
        "syncstorm": WorkloadSpec.make(
            "micro.syncstorm", threads=2, events_per_second=800.0,
            duration_cycles=storm_cycles,
        ),
        "idleperiod": WorkloadSpec.make(
            "micro.idleperiod", idle_ns=500 * USEC,
            iterations=10 if quick else 30, work_cycles=100_000,
        ),
    }
    specs = {}
    for name, ws in workloads.items():
        for arch in ARCHES:
            for mode in TickMode:
                specs[(name, arch, mode)] = RunSpec(
                    ws, tick_mode=mode, seed=seed, noise=False,
                    cpuidle=(name == "idleperiod"), arch=arch,
                    label=f"table-arch/{name}/{arch}/{mode.value}",
                )
    return specs


@dataclass(frozen=True)
class ArchRow:
    """One (workload, arch) line of the comparison."""

    workload: str
    arch: str
    per_mode: dict  # TickMode -> RunMetrics

    @property
    def paratick_reduction(self) -> float:
        """Paratick's exit reduction vs tickless (positive = fewer)."""
        base = self.per_mode[TickMode.TICKLESS].total_exits
        para = self.per_mode[TickMode.PARATICK].total_exits
        return (base - para) / base if base else 0.0

    def program_exits(self, mode: TickMode) -> int:
        return self.per_mode[mode].exits.by_reason(PROGRAM_REASONS[self.arch])


@dataclass(frozen=True)
class ArchResult:
    rows: list

    def useful_cycle_skews(self) -> list[tuple[str, TickMode, int, int]]:
        """(workload, mode, x86 useful, arm useful) where they differ."""
        by_key: dict = {}
        for row in self.rows:
            for mode, m in row.per_mode.items():
                by_key.setdefault((row.workload, mode), {})[row.arch] = m
        out = []
        for (name, mode), per_arch in sorted(
            by_key.items(), key=lambda kv: (kv[0][0], kv[0][1].value)
        ):
            if len(per_arch) < len(ARCHES):
                continue
            x86 = per_arch["x86"].useful_cycles
            arm = per_arch["arm"].useful_cycles
            if x86 != arm:
                out.append((name, mode, x86, arm))
        return out

    def render(self) -> str:
        body = []
        for row in sorted(self.rows, key=lambda r: (r.workload, r.arch)):
            body.append((
                row.workload,
                row.arch,
                f"{row.per_mode[TickMode.PERIODIC].total_exits:,}",
                f"{row.per_mode[TickMode.TICKLESS].total_exits:,}",
                f"{row.per_mode[TickMode.PARATICK].total_exits:,}",
                f"{row.program_exits(TickMode.TICKLESS):,}",
                f"{row.paratick_reduction:+.1%}",
            ))
        table = format_table(
            ["workload", "arch", "periodic", "tickless", "paratick",
             "program traps (tickless)", "paratick vs tickless"],
            body,
            title="Timer-architecture comparison — exits per backend "
                  "(program traps: WRMSR on x86, CNTV sysreg on ARM)",
        )
        skews = self.useful_cycle_skews()
        if skews:
            lines = [
                f"  {name}/{mode.value}: x86 {x86:,} vs arm {arm:,}"
                for name, mode, x86, arm in skews
            ]
            return table + "\nuseful-cycle skew across backends:\n" + "\n".join(lines)
        return table + "\nuseful cycles: bit-identical across backends in every cell"


def run(
    *,
    seed: int = 0,
    quick: bool = False,
    jobs=None,
    cache_dir=None,
    use_cache: bool = True,
    progress=None,
    telemetry=None,
) -> ArchResult:
    """Run the comparison grid and fold it into rows."""
    from repro.experiments.parallel import run_grid

    specs = arch_specs(seed=seed, quick=quick)
    grid = run_grid(
        list(specs.values()), jobs=jobs, cache_dir=cache_dir,
        use_cache=use_cache, progress=progress, telemetry=telemetry,
    ).raise_if_failed()

    cells: dict[tuple[str, str], dict[TickMode, RunMetrics]] = {}
    for (name, arch, mode), spec in specs.items():
        cells.setdefault((name, arch), {})[mode] = grid[spec]
    rows = [
        ArchRow(workload=name, arch=arch, per_mode=per_mode)
        for (name, arch), per_mode in cells.items()
    ]
    return ArchResult(rows=rows)
