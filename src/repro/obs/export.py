"""Chrome ``trace_event`` export of the simulator's event stream.

Produces the JSON Object Format of the Trace Event spec (the format
``chrome://tracing`` defined and Perfetto still loads natively): a
``traceEvents`` array of phase-tagged records with microsecond
timestamps. Loading the output in https://ui.perfetto.dev gives a
zoomable timeline of the run — one *process* track per physical CPU,
one *thread* track per vCPU, duration slices for guest residence and
exit handling, and instant markers for timer arms/fires/injections.

Mapping choices:

* ``pid`` = pCPU index, ``tid`` = a small id per source on that pCPU
  (tid 0 is the CPU-level track). ``M``-phase metadata events name
  them so Perfetto shows ``pCPU0`` / ``vm0/vcpu1`` instead of numbers.
* vCPU run-state transitions become complete (``X``) slices: a slice
  opens when a state is entered and closes on the next transition, so
  the track alternates ``guest`` / ``exited`` / ``halted`` / ``ready``
  exactly like a real scheduler track in Perfetto.
* every other event becomes an instant (``i``) event at its timestamp,
  ``args`` carrying the raw detail — nothing in the stream is dropped.
* simulated ns map to trace µs by ``ts = ns / 1000`` (float, so
  sub-µs spacing survives; the spec explicitly allows fractional ts).

:func:`validate_chrome_trace` checks the invariants Perfetto's loader
cares about, and the golden test exports Fig. 1's idle cycle and pins
the slice sequence.
"""

from __future__ import annotations

import json
from typing import Iterable, Optional

from repro.sim.trace import TraceRecord

#: trace_event phases used by the exporter.
_PH_COMPLETE = "X"
_PH_INSTANT = "i"
_PH_METADATA = "M"

#: vCPU run states rendered as duration slices (OFF ends the track).
_SLICE_STATES = frozenset({"init", "guest", "exited", "halted", "ready"})


def _ts(ns: int) -> float:
    """Simulated ns -> trace_event µs (fractional, spec-sanctioned)."""
    return ns / 1000.0


class _Track:
    """One (pid, tid) lane plus its open state slice, if any."""

    __slots__ = ("pid", "tid", "open_since_ns", "open_state")

    def __init__(self, pid: int, tid: int) -> None:
        self.pid = pid
        self.tid = tid
        self.open_since_ns: Optional[int] = None
        self.open_state: Optional[str] = None


def to_chrome_trace(
    records: Iterable[TraceRecord],
    *,
    pcpu_of: Optional[dict[str, int]] = None,
    end_ns: Optional[int] = None,
) -> dict:
    """Convert a trace-record stream to a Chrome trace_event document.

    ``pcpu_of`` maps a vCPU source (``vm0/vcpu1``) to its physical CPU
    index; unmapped sources land on pid 0. ``end_ns`` closes any still
    open state slice at the run horizon (otherwise it is dropped, as
    the spec has no "unfinished" phase for the object format).
    """
    pcpu_of = pcpu_of or {}
    events: list[dict] = []
    tracks: dict[str, _Track] = {}
    next_tid: dict[int, int] = {}
    named_pids: set[int] = set()
    last_ts_ns = 0

    def track_for(source: str) -> _Track:
        track = tracks.get(source)
        if track is not None:
            return track
        base = source.split("/vlapic")[0]
        pid = pcpu_of.get(base, 0)
        if pid not in named_pids:
            named_pids.add(pid)
            events.append({
                "ph": _PH_METADATA, "name": "process_name", "pid": pid, "tid": 0,
                "args": {"name": f"pCPU{pid}"},
            })
            next_tid[pid] = 1
        tid = next_tid[pid]
        next_tid[pid] = tid + 1
        track = tracks[source] = _Track(pid, tid)
        events.append({
            "ph": _PH_METADATA, "name": "thread_name", "pid": pid, "tid": tid,
            "args": {"name": source},
        })
        return track

    def close_slice(track: _Track, at_ns: int) -> None:
        if track.open_since_ns is None:
            return
        events.append({
            "ph": _PH_COMPLETE,
            "name": track.open_state,
            "cat": "vcpu_state",
            "pid": track.pid,
            "tid": track.tid,
            "ts": _ts(track.open_since_ns),
            "dur": _ts(at_ns - track.open_since_ns),
        })
        track.open_since_ns = None
        track.open_state = None

    for rec in records:
        last_ts_ns = max(last_ts_ns, rec.time)
        track = track_for(rec.source)
        if rec.kind == "vcpu_state" and isinstance(rec.detail, tuple):
            _, new = rec.detail
            close_slice(track, rec.time)
            if new in _SLICE_STATES:
                track.open_since_ns = rec.time
                track.open_state = new
            continue
        args = {}
        if rec.detail is not None:
            args["detail"] = rec.detail if isinstance(rec.detail, (int, str)) else list(rec.detail)
        events.append({
            "ph": _PH_INSTANT,
            "name": rec.kind,
            "cat": "timer" if "timer" in rec.kind or "deadline" in rec.kind
                   or "lapic" in rec.kind or "ptimer" in rec.kind else "event",
            "s": "t",  # instant scope: thread
            "pid": track.pid,
            "tid": track.tid,
            "ts": _ts(rec.time),
            "args": args,
        })

    horizon = end_ns if end_ns is not None else last_ts_ns
    for track in tracks.values():
        close_slice(track, max(horizon, track.open_since_ns or 0))

    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {"generator": "repro.obs.export", "clock": "simulated"},
    }


def write_chrome_trace(doc: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=None, separators=(",", ":"))


def slice_names(doc: dict, source: str) -> list[str]:
    """Ordered slice names on ``source``'s track (golden-test helper)."""
    tid_of: dict[tuple[int, int], str] = {}
    for ev in doc["traceEvents"]:
        if ev.get("ph") == _PH_METADATA and ev.get("name") == "thread_name":
            tid_of[(ev["pid"], ev["tid"])] = ev["args"]["name"]
    out = []
    for ev in doc["traceEvents"]:
        if ev.get("ph") == _PH_COMPLETE and tid_of.get((ev["pid"], ev["tid"])) == source:
            out.append((ev["ts"], ev["name"]))
    return [name for _, name in sorted(out, key=lambda p: p[0])]


def validate_chrome_trace(doc: dict) -> list[str]:
    """Schema checks mirroring what Perfetto's JSON importer requires.

    Returns a list of violations (empty == loadable). Checked: the
    top-level shape, per-phase required keys, non-negative fractional
    timestamps, and that every (pid, tid) with events carries both
    ``process_name`` and ``thread_name`` metadata (tid 0 process rows
    excepted — they exist only to name the pid).
    """
    errors: list[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    named_pids: set[int] = set()
    named_tids: set[tuple[int, int]] = set()
    used_tids: set[tuple[int, int]] = set()
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            errors.append(f"event {i}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in (_PH_COMPLETE, _PH_INSTANT, _PH_METADATA):
            errors.append(f"event {i}: unknown phase {ph!r}")
            continue
        if not isinstance(ev.get("pid"), int) or not isinstance(ev.get("tid"), int):
            errors.append(f"event {i}: pid/tid must be ints")
            continue
        if ph == _PH_METADATA:
            if ev.get("name") == "process_name":
                named_pids.add(ev["pid"])
            elif ev.get("name") == "thread_name":
                named_tids.add((ev["pid"], ev["tid"]))
            else:
                errors.append(f"event {i}: unknown metadata {ev.get('name')!r}")
            if not isinstance(ev.get("args", {}).get("name"), str):
                errors.append(f"event {i}: metadata needs args.name")
            continue
        used_tids.add((ev["pid"], ev["tid"]))
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"event {i}: bad ts {ts!r}")
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            errors.append(f"event {i}: missing name")
        if ph == _PH_COMPLETE:
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"event {i}: complete event needs dur >= 0, got {dur!r}")
        if ph == _PH_INSTANT and ev.get("s") not in ("t", "p", "g"):
            errors.append(f"event {i}: instant scope must be t/p/g")
    for pid, tid in sorted(used_tids):
        if pid not in named_pids:
            errors.append(f"pid {pid}: events but no process_name metadata")
        if (pid, tid) not in named_tids:
            errors.append(f"pid {pid} tid {tid}: events but no thread_name metadata")
    return errors
