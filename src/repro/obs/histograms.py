"""Fixed-bucket log2 latency histograms and the trace-fed recorder.

The paper reports aggregate counts; when hunting a hot path you need
*distributions* — how long one exit round-trip takes, how late a timer
fires, how long a woken vCPU waits for its CPU. :class:`Log2Histogram`
is an HDR-style fixed-layout histogram (64 power-of-two buckets covers
1 ns .. ~584 years), so recording is O(1), memory is constant, and two
histograms merge bucket-wise — the same design as Linux's BPF
``lh_hist`` and HdrHistogram's coarsest setting.

:class:`LatencyRecorder` is a :class:`~repro.sim.trace.Tracer` sink that
derives the four paper-relevant latencies from the structured event
stream online (nothing is retained):

* ``exit_rt/<reason>`` — VM-exit round trip: ``vmexit`` until the vCPU
  leaves the EXITED state (guest re-entry, halt, or READY queueing);
* ``timer_skew`` — deadline arm → fire lateness (fire time minus the
  programmed expiry; the checkers guarantee it is never negative);
* ``wake_dispatch`` — interrupt wake of a halted vCPU until it is back
  in guest mode (includes READY steal time under overcommit);
* ``tick_deliver`` — guest timer deadline fire until the tick's vector
  is injected at VM entry (the tick *delivery* latency; the in-guest
  handler cost is cycle-accounted, not event-delimited).
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from repro.hw.interrupts import Vector
from repro.sim.trace import Tracer

#: Bucket count: bucket ``b`` holds values with ``bit_length() == b``,
#: i.e. the half-open range ``[2^(b-1), 2^b)`` ns; bucket 0 holds 0.
N_BUCKETS = 64


class Log2Histogram:
    """Fixed-layout power-of-two histogram of non-negative ns values."""

    __slots__ = ("counts", "count", "total", "min", "max")

    def __init__(self) -> None:
        self.counts = [0] * N_BUCKETS
        self.count = 0
        self.total = 0
        self.min: Optional[int] = None
        self.max = 0

    def record(self, value: int) -> None:
        """Record one observation (negative values are a caller bug)."""
        if value < 0:
            raise ValueError(f"latency cannot be negative: {value}")
        b = min(value.bit_length(), N_BUCKETS - 1)
        self.counts[b] += 1
        self.count += 1
        self.total += value
        self.max = max(self.max, value)
        self.min = value if self.min is None else min(self.min, value)

    def merge(self, other: "Log2Histogram") -> "Log2Histogram":
        """Bucket-wise sum (for aggregating per-run histograms)."""
        out = Log2Histogram()
        out.counts = [a + b for a, b in zip(self.counts, other.counts)]
        out.count = self.count + other.count
        out.total = self.total + other.total
        out.max = max(self.max, other.max)
        mins = [m for m in (self.min, other.min) if m is not None]
        out.min = min(mins) if mins else None
        return out

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> int:
        """Approximate p-th percentile (bucket geometric midpoint).

        Resolution is the bucket width (a factor of two) — good enough
        to tell a 2 us exit from a 200 us steal stall, which is what a
        log histogram is for.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile out of range: {p}")
        if self.count == 0:
            return 0
        target = p / 100.0 * self.count
        seen = 0
        for b, c in enumerate(self.counts):
            seen += c
            if seen >= target and c:
                if b == 0:
                    return 0
                lo, hi = 1 << (b - 1), (1 << b) - 1
                mid = (lo + hi) // 2
                # Clamp to the observed envelope so tiny samples do not
                # report a midpoint outside [min, max].
                return max(self.min or 0, min(mid, self.max))
        return self.max  # pragma: no cover - unreachable (seen==count)

    def nonzero_buckets(self) -> Iterator[tuple[int, int, int]]:
        """Yield ``(low_ns, high_ns, count)`` for occupied buckets."""
        for b, c in enumerate(self.counts):
            if c:
                lo = 0 if b == 0 else 1 << (b - 1)
                hi = 0 if b == 0 else (1 << b) - 1
                yield lo, hi, c

    def to_json_dict(self) -> dict:
        return {
            "count": self.count,
            "total_ns": self.total,
            "min_ns": self.min,
            "max_ns": self.max,
            "buckets": {str(b): c for b, c in enumerate(self.counts) if c},
        }

    def summary(self) -> dict[str, float]:
        """The headline numbers a report row shows."""
        return {
            "count": self.count,
            "mean_ns": self.mean,
            "p50_ns": self.percentile(50),
            "p95_ns": self.percentile(95),
            "p99_ns": self.percentile(99),
            "max_ns": self.max,
        }


class HistogramRegistry:
    """Named histograms, created on first use."""

    def __init__(self) -> None:
        self._hists: dict[str, Log2Histogram] = {}

    def get(self, name: str) -> Log2Histogram:
        h = self._hists.get(name)
        if h is None:
            h = self._hists[name] = Log2Histogram()
        return h

    def record(self, name: str, value: int) -> None:
        self.get(name).record(value)

    def names(self) -> list[str]:
        return sorted(self._hists)

    def items(self) -> list[tuple[str, Log2Histogram]]:
        return sorted(self._hists.items())

    def __len__(self) -> int:
        return len(self._hists)

    def to_json_dict(self) -> dict:
        return {name: h.to_json_dict() for name, h in self.items()}

    def summary_rows(self) -> list[tuple[str, str, str, str, str, str]]:
        """Rows for :func:`repro.metrics.report.format_table`."""
        from repro.sim.timebase import fmt_time

        rows = []
        for name, h in self.items():
            s = h.summary()
            rows.append((
                name,
                f"{h.count:,}",
                fmt_time(int(s["p50_ns"])),
                fmt_time(int(s["p95_ns"])),
                fmt_time(int(s["p99_ns"])),
                fmt_time(int(s["max_ns"])),
            ))
        return rows


#: Vectors that carry a guest tick (LOCAL_TIMER or the paratick virtual
#: tick) — used to close ``tick_deliver`` measurements.
_TICK_VECTORS = frozenset({int(Vector.LOCAL_TIMER), int(Vector.PARATICK_VIRTUAL_TICK)})


class LatencyRecorder(Tracer):
    """Streams trace events into the latency histogram registry."""

    enabled = True

    def __init__(self, registry: Optional[HistogramRegistry] = None) -> None:
        self.registry = registry if registry is not None else HistogramRegistry()
        #: source -> (exit time, reason) of the in-flight exit.
        self._open_exit: dict[str, tuple[int, str]] = {}
        #: source -> wake time (halted -> exited transition).
        self._open_wake: dict[str, int] = {}
        #: source -> fire time of a not-yet-injected guest tick.
        self._open_tick: dict[str, int] = {}

    def emit(self, time: int, source: str, kind: str, detail: Any = None) -> None:
        if kind == "vmexit":
            if isinstance(detail, tuple) and len(detail) == 2:
                self._open_exit[source] = (time, detail[0])
        elif kind == "vcpu_state":
            if not (isinstance(detail, tuple) and len(detail) == 2):
                return
            old, new = detail
            if old == "exited":
                opened = self._open_exit.pop(source, None)
                if opened is not None:
                    t0, reason = opened
                    self.registry.record(f"exit_rt/{reason}", time - t0)
            if old == "halted" and new == "exited":
                self._open_wake[source] = time
            elif new == "guest":
                t0 = self._open_wake.pop(source, None)
                if t0 is not None:
                    self.registry.record("wake_dispatch", time - t0)
        elif kind == "deadline_fire":
            if isinstance(detail, tuple) and len(detail) == 2 and isinstance(detail[0], int):
                self.registry.record("timer_skew", max(0, time - detail[0]))
                self._open_tick[source] = time
        elif kind == "lapic_fire":
            # Collapse the vLAPIC sub-source onto its owning vCPU so the
            # subsequent inject (emitted by the executor) closes it.
            from repro.analysis.events import vcpu_of

            self._open_tick[vcpu_of(source)] = time
        elif kind == "inject":
            if isinstance(detail, tuple) and not _TICK_VECTORS.isdisjoint(detail):
                t0 = self._open_tick.pop(source, None)
                if t0 is not None:
                    self.registry.record("tick_deliver", time - t0)

    def to_json_dict(self) -> dict:
        return self.registry.to_json_dict()
