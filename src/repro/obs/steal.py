"""Trace-derived per-vCPU steal-time accounting.

*Steal time* is the time a runnable vCPU spends waiting for a physical
CPU another vCPU (or the host) is using — the guest is "robbed" of it
without knowing (arXiv:1810.01139 measures exactly this effect under
overcommit; KVM surfaces it to guests through the steal-time MSR /
``PV_TIME`` shared page, and ``top`` shows it as ``%st``).

The simulator accounts steal twice, deliberately:

1. **Runtime counters** (:attr:`repro.host.vcpu.VCpu.total_steal_ns`):
   the host scheduler stamps ``ready_since_ns`` when it queues a vCPU
   READY and the executor accumulates the wait at dispatch — the same
   shape as KVM's ``run_delay`` plumbing. Always on, no tracer needed.
2. **This tracker**: an independent reconstruction from the structured
   event stream (``vcpu_state`` READY transitions plus the
   ``sched_dispatch`` detail). Because both derive the same quantity
   from different evidence, ``closed interval sum == runtime counter``
   is an exact cross-check the reconcile battery enforces.

The tracker also attributes steal per *pCPU*, which enables the
timeline reconciliation: every stolen nanosecond on a CPU is a
nanosecond some other party was using it, so no single vCPU's steal on
a pCPU can exceed that pCPU's on-timeline busy time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from repro.hw.cpu import CycleDomain
from repro.sim.trace import Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.host.kvm import Hypervisor
    from repro.hw.cpu import Machine


class StealTracker(Tracer):
    """Reconstructs per-vCPU / per-pCPU steal time from the trace."""

    enabled = True

    def __init__(self) -> None:
        #: source -> ns when it entered READY (open interval).
        self._ready_since: dict[str, int] = {}
        #: source -> total closed steal ns.
        self.steal_ns: dict[str, int] = {}
        #: source -> number of closed READY episodes.
        self.episodes: dict[str, int] = {}
        #: pcpu index -> total steal suffered on that CPU, from the
        #: ``sched_dispatch`` detail (the executor's own measurement).
        self.pcpu_steal_ns: dict[int, int] = {}
        #: largest single-vCPU steal total per pCPU (timeline bound).
        self._pcpu_per_vcpu: dict[int, dict[str, int]] = {}

    def emit(self, time: int, source: str, kind: str, detail: Any = None) -> None:
        if kind == "vcpu_state":
            if not (isinstance(detail, tuple) and len(detail) == 2):
                return
            old, new = detail
            if new == "ready":
                self._ready_since[source] = time
            elif old == "ready":
                t0 = self._ready_since.pop(source, None)
                if t0 is not None:
                    self.steal_ns[source] = self.steal_ns.get(source, 0) + (time - t0)
                    self.episodes[source] = self.episodes.get(source, 0) + 1
        elif kind == "sched_dispatch":
            if isinstance(detail, tuple) and len(detail) == 2:
                pcpu, stolen = detail
                self.pcpu_steal_ns[pcpu] = self.pcpu_steal_ns.get(pcpu, 0) + stolen
                per = self._pcpu_per_vcpu.setdefault(pcpu, {})
                per[source] = per.get(source, 0) + stolen

    # -------------------------------------------------------------- readouts

    @property
    def total_steal_ns(self) -> int:
        return sum(self.steal_ns.values())

    def open_waiters(self) -> dict[str, int]:
        """Sources still READY at end of trace (their wait is unclosed)."""
        return dict(self._ready_since)

    def per_vcpu(self) -> dict[str, dict[str, int]]:
        return {
            src: {"steal_ns": ns, "episodes": self.episodes.get(src, 0)}
            for src, ns in sorted(self.steal_ns.items())
        }

    def to_json_dict(self) -> dict:
        return {
            "total_steal_ns": self.total_steal_ns,
            "per_vcpu": self.per_vcpu(),
            "per_pcpu_ns": {str(k): v for k, v in sorted(self.pcpu_steal_ns.items())},
        }

    # ------------------------------------------------------------- reconcile

    def reconcile_runtime(self, hv: "Hypervisor") -> list[str]:
        """Cross-check trace-derived steal against the runtime counters.

        Both measure dispatch-closed READY waits, so they must agree
        *exactly* — any divergence means an event was lost or a state
        transition bypassed the scheduler.
        """
        errors: list[str] = []
        runtime: dict[str, tuple[int, int]] = {}
        for vm in hv.vms:
            # Unplugged vCPUs retired their counters into the VM; a
            # re-plugged index restarts at zero, so live adds on top.
            for src, (ns, eps) in vm.retired_steal.items():
                runtime[src] = (ns, eps)
            for vcpu in vm.vcpus:
                src = f"{vcpu.vm_name}/vcpu{vcpu.index}"
                base = runtime.get(src, (0, 0))
                runtime[src] = (base[0] + vcpu.total_steal_ns, base[1] + vcpu.steal_episodes)
        for src, (run_ns, run_eps) in runtime.items():
            tr_ns = self.steal_ns.get(src, 0)
            tr_eps = self.episodes.get(src, 0)
            if tr_ns != run_ns:
                errors.append(
                    f"{src}: trace steal {tr_ns} ns != runtime counter {run_ns} ns"
                )
            if tr_eps != run_eps:
                errors.append(
                    f"{src}: trace episodes {tr_eps} != runtime {run_eps}"
                )
        for src in self.steal_ns:
            if src not in runtime:
                errors.append(f"{src}: steal traced for unknown vCPU")
        return errors

    def reconcile_timeline(self, machine: "Machine", elapsed_ns: int) -> list[str]:
        """Bound steal by the pCPU busy timeline.

        While a vCPU waits READY on CPU ``p``, some other vCPU occupies
        ``p``'s timeline; that occupation is what the cycle ledger calls
        on-timeline busy time (total busy minus the off-timeline
        HOST_TICK/HOST_IO domains). Hence for every pCPU, each single
        vCPU's steal — and the wait total measured at dispatch — must
        fit inside that CPU's busy timeline, and inside the run.
        """
        errors: list[str] = []
        for pcpu, per in self._pcpu_per_vcpu.items():
            cpu = machine.cpu(pcpu)
            timeline = (
                cpu.busy_ns()
                - cpu.busy_ns(CycleDomain.HOST_TICK)
                - cpu.busy_ns(CycleDomain.HOST_IO)
            )
            for src, stolen in per.items():
                if stolen > timeline:
                    errors.append(
                        f"pCPU{pcpu}: {src} steal {stolen} ns exceeds "
                        f"busy timeline {timeline} ns"
                    )
                if stolen > elapsed_ns:
                    errors.append(
                        f"pCPU{pcpu}: {src} steal {stolen} ns exceeds "
                        f"elapsed {elapsed_ns} ns"
                    )
        return errors


def runtime_steal_summary(hv: "Hypervisor") -> dict[str, dict[str, int]]:
    """Per-vCPU steal from the always-on runtime counters (no tracer)."""
    out: dict[str, dict[str, int]] = {}
    for vm in hv.vms:
        for vcpu in vm.vcpus:
            out[f"{vcpu.vm_name}/vcpu{vcpu.index}"] = {
                "steal_ns": vcpu.total_steal_ns,
                "episodes": vcpu.steal_episodes,
            }
    return out
