"""Virtual-``perf``: the simulator's observability subsystem.

The paper's evaluation (§6) leans on three host-side tools — ``perf``
for cycle attribution, scheduler stats for steal, and ftrace for event
timelines. This package rebuilds those tools *inside* the simulator,
consuming the two signal sources every run already produces:

* the **cycle ledger** (:meth:`repro.hw.cpu.PhysicalCPU.account`),
  observed by the :class:`~repro.obs.profiler.SamplingProfiler`;
* the **structured trace stream** (:class:`repro.sim.trace.Tracer`),
  fanned out to the :class:`~repro.obs.steal.StealTracker`, the
  :class:`~repro.obs.histograms.LatencyRecorder` and a
  :class:`~repro.sim.trace.RingTracer` feeding Chrome-trace export
  (:mod:`repro.obs.export`).

Nothing here schedules simulator events or mutates model state, so a
run's simulated results are bit-identical with observability on or
off; and everything rides behind the existing ``tracer.enabled`` /
``observer is None`` fast paths, so a NullTracer run with no
:class:`Observability` attached does zero profiling work (asserted by
the exploding-tracer tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.obs.export import to_chrome_trace, validate_chrome_trace, write_chrome_trace
from repro.obs.histograms import HistogramRegistry, LatencyRecorder, Log2Histogram
from repro.obs.profiler import DEFAULT_SAMPLE_PERIOD_NS, SamplingProfiler
from repro.obs.series import DEFAULT_WINDOW_NS, SeriesRecorder, reconcile_series
from repro.obs.steal import StealTracker, runtime_steal_summary
from repro.sim.trace import RingTracer, TeeTracer, Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.host.kvm import Hypervisor
    from repro.hw.cpu import Machine
    from repro.sim.engine import Simulator

__all__ = [
    "ObsConfig",
    "Observability",
    "SamplingProfiler",
    "StealTracker",
    "SeriesRecorder",
    "reconcile_series",
    "DEFAULT_WINDOW_NS",
    "LatencyRecorder",
    "HistogramRegistry",
    "Log2Histogram",
    "to_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
    "runtime_steal_summary",
    "DEFAULT_SAMPLE_PERIOD_NS",
]


@dataclass(frozen=True)
class ObsConfig:
    """What to collect. Everything defaults on except trace retention,
    whose memory cost scales with run length."""

    profile: bool = True
    sample_period_ns: int = DEFAULT_SAMPLE_PERIOD_NS
    latency: bool = True
    steal: bool = True
    #: Retain the raw event stream for Chrome-trace export. Off by
    #: default: the ring holds ``ring_capacity`` records and the export
    #: refuses to pretend completeness when the ring overflowed.
    trace_export: bool = False
    ring_capacity: int = 1_000_000
    #: Windowed in-sim time series (exits / steal / halt / tick tail
    #: latency per interval of simulated time; see
    #: :mod:`repro.obs.series`). Off by default — it is a distinct
    #: cached artifact (``<key>.series.json``), not part of
    #: :meth:`Observability.to_json_dict`.
    series: bool = False
    series_window_ns: int = DEFAULT_WINDOW_NS

    @property
    def any_tracing(self) -> bool:
        return self.latency or self.steal or self.trace_export or self.series


class Observability:
    """One run's worth of virtual-perf collectors, wired as a unit.

    Usage (what ``run_workload(obs=...)`` does internally)::

        obs = Observability(ObsConfig(trace_export=True))
        sim = Simulator(tracer=obs.tracer())
        ...build machine/hv...
        obs.install(machine, hv)
        sim.run(...)
        obs.finalize(sim, machine, hv)
        doc = obs.chrome_trace()
    """

    def __init__(self, config: Optional[ObsConfig] = None) -> None:
        self.config = config if config is not None else ObsConfig()
        self.profiler = (
            SamplingProfiler(self.config.sample_period_ns) if self.config.profile else None
        )
        self.latency = LatencyRecorder() if self.config.latency else None
        self.steal = StealTracker() if self.config.steal else None
        self.ring = (
            RingTracer(self.config.ring_capacity) if self.config.trace_export else None
        )
        self.series = (
            SeriesRecorder(self.config.series_window_ns) if self.config.series else None
        )
        self.elapsed_ns = 0
        self._pcpu_of: dict[str, int] = {}
        self._finalized = False

    # -------------------------------------------------------------- wiring

    def tracer(self, user_tracer: Optional[Tracer] = None) -> Optional[Tracer]:
        """The tracer to hand the simulator: obs sinks + the user's.

        Returns ``user_tracer`` unchanged (possibly None) when no obs
        sink needs the event stream — the NullTracer fast path must not
        be defeated by an enabled-but-empty tee.
        """
        sinks: list[Tracer] = [
            s for s in (self.latency, self.steal, self.ring, self.series) if s is not None
        ]
        if not sinks:
            return user_tracer
        if user_tracer is not None:
            sinks.append(user_tracer)
        return sinks[0] if len(sinks) == 1 else TeeTracer(*sinks)

    def install(self, machine: "Machine", hv: "Hypervisor") -> None:
        """Attach the ledger observer (call once hv exists, before run)."""
        if self.profiler is not None:
            self.profiler.install(machine, hv)

    def finalize(self, sim: "Simulator", machine: "Machine", hv: "Hypervisor") -> None:
        """Capture end-of-run context the collectors cannot see alone."""
        self.elapsed_ns = sim.now
        self._pcpu_of = {
            f"{vcpu.vm_name}/vcpu{vcpu.index}": vcpu.pcpu.index
            for vm in hv.vms
            for vcpu in vm.vcpus
        }
        if self.profiler is not None:
            self.profiler.uninstall()
        if self.series is not None:
            self.series.finalize(sim.now)
        self._finalized = True

    # ------------------------------------------------------------- readouts

    def chrome_trace(self) -> dict:
        """Chrome trace_event document from the retained event stream."""
        if self.ring is None:
            raise ValueError("trace export not enabled in ObsConfig")
        if self.ring.truncated:
            raise ValueError(
                f"ring dropped {self.ring.dropped} records; raise ring_capacity "
                "(an exported trace must cover the whole run, not a suffix)"
            )
        return to_chrome_trace(
            self.ring.records, pcpu_of=self._pcpu_of, end_ns=self.elapsed_ns or None
        )

    def series_json(self) -> dict:
        """The windowed time-series document (``<key>.series.json``).

        Deliberately *not* merged into :meth:`to_json_dict` — the
        ``.obs.json`` artifact schema predates the series and cached
        copies must stay readable as-is.
        """
        if self.series is None:
            raise ValueError("series not enabled in ObsConfig")
        return self.series.to_json_dict()

    def to_json_dict(self) -> dict:
        out: dict = {"elapsed_ns": self.elapsed_ns}
        if self.profiler is not None:
            out["profile"] = self.profiler.to_json_dict()
        if self.latency is not None:
            out["latency"] = self.latency.to_json_dict()
        if self.steal is not None:
            out["steal"] = self.steal.to_json_dict()
        if self.ring is not None:
            out["trace_records"] = len(self.ring.records)
            out["trace_dropped"] = self.ring.dropped
        return out
