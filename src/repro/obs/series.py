"""Deterministic in-sim time series: windowed metrics over sim time.

A run's final :class:`~repro.metrics.perf.RunMetrics` says *how much*
steal or halt residency accrued; it cannot say *when*. This module
derives, purely from the structured trace stream, a windowed series
over **simulated** time — per-interval VM exits, steal ns, halt
residency ns, and the tick-delivery latency distribution — so a burst
profile's shape is visible, not just its integral.

Determinism and exactness are the contract:

* the recorder consumes only trace events, never wall-clock, so the
  same run always yields the byte-identical series (it is cached as a
  ``<key>.series.json`` artifact next to ``.obs.json``);
* interval quantities (steal, halt) are split across window boundaries
  with exact integer arithmetic — the sum over windows equals the
  un-windowed total *to the nanosecond*;
* the per-episode semantics mirror the runtime counters exactly:
  steal counts dispatch-**closed** READY waits (the
  :class:`~repro.obs.steal.StealTracker` contract) and halt residency
  counts **closed** halted-state spans (the
  ``VCpu.total_halted_ns`` accounting edge), so
  :func:`reconcile_series` can demand equality with the run's final
  RunMetrics, not approximation.

Tick-delivery latency follows the
:class:`~repro.obs.histograms.LatencyRecorder` pairing rules
(``deadline_fire``/``lapic_fire`` opens, a tick-vector ``inject``
closes) and lands in the window of the closing inject.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from repro.hw.interrupts import Vector
from repro.obs.histograms import Log2Histogram
from repro.sim.timebase import MSEC
from repro.sim.trace import Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.metrics.perf import RunMetrics

#: Default window width: 10 simulated ms (a 60 s default-horizon run
#: yields 6000 windows; sparse storage keeps quiet runs small).
DEFAULT_WINDOW_NS = 10 * MSEC

#: Vectors that carry a guest tick (matches the LatencyRecorder).
_TICK_VECTORS = frozenset({int(Vector.LOCAL_TIMER), int(Vector.PARATICK_VIRTUAL_TICK)})

#: Interval fields accumulated with window splitting.
_INTERVAL_FIELDS = ("steal_ns", "halted_ns")


class _Window:
    """Accumulators for one window (created on first touch)."""

    __slots__ = ("exits", "steal_ns", "halted_ns", "tick")

    def __init__(self) -> None:
        self.exits = 0
        self.steal_ns = 0
        self.halted_ns = 0
        self.tick: Optional[Log2Histogram] = None

    def tick_hist(self) -> Log2Histogram:
        if self.tick is None:
            self.tick = Log2Histogram()
        return self.tick


class SeriesRecorder(Tracer):
    """Streams trace events into sparse per-window accumulators."""

    enabled = True

    def __init__(self, window_ns: int = DEFAULT_WINDOW_NS) -> None:
        if window_ns <= 0:
            raise ValueError(f"window_ns must be positive, got {window_ns}")
        self.window_ns = window_ns
        self.end_ns = 0
        self._windows: dict[int, _Window] = {}
        #: source -> ns when it entered READY (open steal interval).
        self._ready_since: dict[str, int] = {}
        #: source -> ns when it entered HALTED (open halt interval).
        self._halted_since: dict[str, int] = {}
        #: source -> fire time of a not-yet-injected guest tick.
        self._open_tick: dict[str, int] = {}

    # ------------------------------------------------------------ recording

    def _window(self, index: int) -> _Window:
        w = self._windows.get(index)
        if w is None:
            w = self._windows[index] = _Window()
        return w

    def _spread(self, t0: int, t1: int, field: str) -> None:
        """Add the interval ``[t0, t1)`` to ``field``, split exactly at
        window boundaries (integer arithmetic; parts sum to t1-t0)."""
        if t1 <= t0:
            return
        wn = self.window_ns
        i = t0 // wn
        last = (t1 - 1) // wn
        while i <= last:
            lo = max(t0, i * wn)
            hi = min(t1, (i + 1) * wn)
            w = self._window(i)
            setattr(w, field, getattr(w, field) + (hi - lo))
            i += 1

    def emit(self, time: int, source: str, kind: str, detail: Any = None) -> None:
        if kind == "vmexit":
            self._window(time // self.window_ns).exits += 1
        elif kind == "vcpu_state":
            if not (isinstance(detail, tuple) and len(detail) == 2):
                return
            old, new = detail
            if new == "ready":
                self._ready_since[source] = time
            elif old == "ready":
                t0 = self._ready_since.pop(source, None)
                if t0 is not None:
                    self._spread(t0, time, "steal_ns")
            if new == "halted":
                self._halted_since[source] = time
            elif old == "halted":
                t0 = self._halted_since.pop(source, None)
                if t0 is not None:
                    self._spread(t0, time, "halted_ns")
        elif kind == "deadline_fire":
            if isinstance(detail, tuple) and len(detail) == 2 and isinstance(detail[0], int):
                self._open_tick[source] = time
        elif kind == "lapic_fire":
            from repro.analysis.events import vcpu_of

            self._open_tick[vcpu_of(source)] = time
        elif kind == "inject":
            if isinstance(detail, tuple) and not _TICK_VECTORS.isdisjoint(detail):
                t0 = self._open_tick.pop(source, None)
                if t0 is not None:
                    self._window(time // self.window_ns).tick_hist().record(time - t0)

    def finalize(self, end_ns: int) -> None:
        """Record the run horizon. Open steal/halt intervals are left
        unclosed on purpose: the runtime counters exclude them too, and
        the reconciliation demands exact agreement."""
        self.end_ns = end_ns

    # ------------------------------------------------------------- readouts

    def totals(self) -> dict[str, int]:
        """Sums over all windows (what reconciliation compares)."""
        out = {"exits": 0, "steal_ns": 0, "halted_ns": 0,
               "tick_count": 0, "tick_total_ns": 0}
        for w in self._windows.values():
            out["exits"] += w.exits
            out["steal_ns"] += w.steal_ns
            out["halted_ns"] += w.halted_ns
            if w.tick is not None:
                out["tick_count"] += w.tick.count
                out["tick_total_ns"] += w.tick.total
        return out

    def to_json_dict(self) -> dict:
        """The ``<key>.series.json`` artifact schema (version 1)."""
        windows = []
        for i in sorted(self._windows):
            w = self._windows[i]
            entry: dict[str, Any] = {
                "index": i,
                "start_ns": i * self.window_ns,
                "exits": w.exits,
                "steal_ns": w.steal_ns,
                "halted_ns": w.halted_ns,
            }
            if w.tick is not None and w.tick.count:
                entry["tick_deliver"] = {
                    "count": w.tick.count,
                    "total_ns": w.tick.total,
                    "max_ns": w.tick.max,
                    "p95_ns": w.tick.percentile(95),
                    "p99_ns": w.tick.percentile(99),
                }
            windows.append(entry)
        return {
            "version": 1,
            "window_ns": self.window_ns,
            "end_ns": self.end_ns,
            "windows": windows,
            "totals": self.totals(),
        }


def series_totals(series: dict) -> dict[str, int]:
    """Recompute totals from a serialized series' window list."""
    out = {"exits": 0, "steal_ns": 0, "halted_ns": 0,
           "tick_count": 0, "tick_total_ns": 0}
    for w in series.get("windows", []):
        out["exits"] += int(w.get("exits", 0))
        out["steal_ns"] += int(w.get("steal_ns", 0))
        out["halted_ns"] += int(w.get("halted_ns", 0))
        tick = w.get("tick_deliver")
        if tick:
            out["tick_count"] += int(tick.get("count", 0))
            out["tick_total_ns"] += int(tick.get("total_ns", 0))
    return out


def reconcile_series(series: dict, metrics: "RunMetrics") -> list[str]:
    """Demand exact agreement between a series and the run's RunMetrics.

    Three equalities, all to-the-nanosecond (no tolerance):

    * window exits sum == ``metrics.total_exits`` (the
      :func:`repro.analysis.reconcile.reconcile_exits` guarantee lifts
      trace-counted exits to counter-counted exits);
    * window steal sum == ``metrics.extra["steal_ns"]`` (both count
      dispatch-closed READY waits);
    * window halt sum == ``metrics.extra["halted_ns"]`` (both count
      closed halted spans; open halts at the horizon excluded by both).

    Plus internal consistency: the stored ``totals`` object matches the
    windows it summarizes, and no window starts past ``end_ns``.

    Note: runs that *unplug* vCPUs retire counters in ways the trace
    stream mirrors 1:1 today, but the equalities are only asserted for
    the unperturbed runs the golden/CI batteries use.
    """
    errors: list[str] = []
    recomputed = series_totals(series)
    stored = series.get("totals", {})
    for k, v in recomputed.items():
        if int(stored.get(k, 0)) != v:
            errors.append(f"totals[{k!r}] = {stored.get(k)} != window sum {v}")
    end_ns = int(series.get("end_ns", 0))
    for w in series.get("windows", []):
        if end_ns and int(w.get("start_ns", 0)) >= end_ns:
            errors.append(f"window {w.get('index')} starts at "
                          f"{w.get('start_ns')} ns, past end {end_ns} ns")
    if recomputed["exits"] != metrics.total_exits:
        errors.append(f"series exits {recomputed['exits']} != "
                      f"RunMetrics total_exits {metrics.total_exits}")
    run_steal = int(metrics.extra.get("steal_ns", 0))
    if recomputed["steal_ns"] != run_steal:
        errors.append(f"series steal {recomputed['steal_ns']} ns != "
                      f"RunMetrics steal_ns {run_steal} ns")
    run_halt = int(metrics.extra.get("halted_ns", 0))
    if recomputed["halted_ns"] != run_halt:
        errors.append(f"series halt {recomputed['halted_ns']} ns != "
                      f"RunMetrics halted_ns {run_halt} ns")
    return errors
