"""Virtual sampling profiler over the cycle ledger.

The paper's authors ran ``perf`` on the host to attribute cycles to the
timer path (§6). The simulator's equivalent cannot interrupt anything —
instead it observes the one place every busy nanosecond already flows
through: :meth:`repro.hw.cpu.PhysicalCPU.account`. The profiler keeps a
per-pCPU cursor along that CPU's *busy timeline* and takes one sample
every ``sample_period_ns`` of busy time, attributing it to the tuple

    ``(pCPU, vCPU, CycleDomain, guest context)``

where the guest context is the running task's name for guest domains
and a fixed host frame otherwise. Because the cursor advances exactly
with the ledger, sample counts reconcile with it by construction:
``samples(pcpu) == busy_ns(pcpu) // period`` — an invariant the obs
tests assert.

This is *busy-time* sampling, not wall-clock sampling: idle time is
never sampled (it is reported separately as ``elapsed - busy``), and a
segment accounted in arrears is attributed at its completion instant,
so the guest context seen is the one current when the segment *ends*.
Both caveats are documented in ``docs/observability.md``; neither
perturbs simulated time — the profiler schedules nothing.

Output is a flamegraph-ready collapsed-stack rendering
(``pcpu0;vm0/vcpu1;guest_user;worker-3 1234`` — one line per unique
stack, count of samples last), the format ``flamegraph.pl`` and
speedscope consume directly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.hw.cpu import CycleDomain, PhysicalCPU

if TYPE_CHECKING:  # pragma: no cover
    from repro.host.kvm import Hypervisor
    from repro.hw.cpu import Machine

#: Default virtual sampling period: 10 us of busy time = 100 kHz, an
#: order of magnitude above perf's usual 99 Hz because virtual samples
#: are free — no sampled system exists to perturb.
DEFAULT_SAMPLE_PERIOD_NS = 10_000

#: Context frame used for host-side domains (no guest task is running
#: *in* them; the work belongs to the hypervisor).
_HOST_FRAMES = {
    CycleDomain.VMX_TRANSITION: "kvm:world_switch",
    CycleDomain.POLLUTION: "kvm:pollution",
    CycleDomain.HOST_HANDLER: "kvm:exit_handler",
    CycleDomain.HOST_TICK: "host:tick",
    CycleDomain.HOST_IO: "host:vhost",
    CycleDomain.HOST_SCHED: "host:sched",
    CycleDomain.HALT_POLL: "kvm:halt_poll",
}

#: Guest domains, attributed to the current task of the running vCPU.
_GUEST_DOMAINS = frozenset({CycleDomain.GUEST_USER, CycleDomain.GUEST_KERNEL})


class SamplingProfiler:
    """Ledger observer taking one sample per period of pCPU busy time."""

    def __init__(self, period_ns: int = DEFAULT_SAMPLE_PERIOD_NS) -> None:
        if period_ns <= 0:
            raise ValueError(f"sample period must be positive, got {period_ns}")
        self.period_ns = period_ns
        #: (pcpu_index, vcpu_source, domain_value, context) -> samples.
        self.samples: dict[tuple[int, str, str, str], int] = {}
        self._cursors: dict[int, int] = {}
        self._hv: Optional["Hypervisor"] = None
        self._machine: Optional["Machine"] = None
        #: kernels by VM name, resolved lazily (guest attaches after VM).
        self._kernels: dict[str, object] = {}

    # ------------------------------------------------------------- lifecycle

    def install(self, machine: "Machine", hv: "Hypervisor") -> None:
        """Attach to every pCPU of ``machine`` (one per run)."""
        self._hv = hv
        self._machine = machine
        for cpu in machine.cpus:
            if cpu.observer is not None:
                raise ValueError(f"pCPU{cpu.index} already has a ledger observer")
            cpu.observer = self
            self._cursors[cpu.index] = 0

    def uninstall(self) -> None:
        if self._machine is not None:
            for cpu in self._machine.cpus:
                if cpu.observer is self:
                    cpu.observer = None

    # ------------------------------------------------------------- sampling

    def on_account(self, pcpu: PhysicalCPU, domain: CycleDomain, ns: int) -> None:
        """Ledger hook: advance the busy cursor, emit crossed samples."""
        cur = self._cursors[pcpu.index]
        new = cur + ns
        n = new // self.period_ns - cur // self.period_ns
        self._cursors[pcpu.index] = new
        if n:
            key = (pcpu.index,) + self._attribute(pcpu, domain)
            self.samples[key] = self.samples.get(key, 0) + n

    def _attribute(self, pcpu: PhysicalCPU, domain: CycleDomain) -> tuple[str, str, str]:
        """(vcpu_source, domain_value, context) for a segment ending now."""
        vcpu = self._hv.sched.running_on(pcpu.index) if self._hv is not None else None
        if vcpu is None:
            return "host", domain.value, _HOST_FRAMES.get(domain, domain.value)
        source = f"{vcpu.vm_name}/vcpu{vcpu.index}"
        if domain in _GUEST_DOMAINS:
            return source, domain.value, self._guest_context(vcpu)
        return source, domain.value, _HOST_FRAMES.get(domain, domain.value)

    def _guest_context(self, vcpu) -> str:
        kernel = self._kernels.get(vcpu.vm_name)
        if kernel is None:
            try:
                kernel = self._hv.find_vm(vcpu.vm_name).kernel
            except Exception:
                return "?"
            self._kernels[vcpu.vm_name] = kernel
        task = kernel.sched.current(vcpu.index) if kernel is not None else None
        return task.name if task is not None else "idle"

    # -------------------------------------------------------------- readouts

    @property
    def total_samples(self) -> int:
        return sum(self.samples.values())

    def samples_on(self, pcpu_index: int) -> int:
        return sum(c for k, c in self.samples.items() if k[0] == pcpu_index)

    def by_domain(self) -> dict[str, int]:
        """Sample histogram over cycle domains (the ledger, resampled)."""
        out: dict[str, int] = {}
        for (_, _, domain, _), c in self.samples.items():
            out[domain] = out.get(domain, 0) + c
        return out

    def by_context(self) -> dict[str, int]:
        """Sample histogram over guest/host context frames."""
        out: dict[str, int] = {}
        for (_, _, _, ctx), c in self.samples.items():
            out[ctx] = out.get(ctx, 0) + c
        return out

    def collapsed(self) -> list[str]:
        """Collapsed-stack lines, most samples first (flamegraph input)."""
        lines = []
        for (pcpu, vcpu, domain, ctx), count in sorted(
            self.samples.items(), key=lambda kv: (-kv[1], kv[0])
        ):
            lines.append(f"pcpu{pcpu};{vcpu};{domain};{ctx} {count}")
        return lines

    def to_json_dict(self) -> dict:
        return {
            "period_ns": self.period_ns,
            "total_samples": self.total_samples,
            "by_domain": self.by_domain(),
            "collapsed": self.collapsed(),
        }
