"""Paratick reproduction library.

A discrete-event simulator of the x86 hardware-assisted virtualization
timer path, reproducing *"Paratick: Reducing Timer Overhead in Virtual
Machines"* (Schildermans, Aerts, Shan, Ding — ICPP '21): a KVM-like
hypervisor, a Linux-like guest kernel, and three scheduler-tick
management modes — classic periodic, tickless (dynticks-idle) and
**paratick** (virtual scheduler ticks, the paper's contribution).

Quick start::

    from repro import TickMode, simulate_workload
    from repro.workloads import parsec

    result = simulate_workload(parsec.benchmark("streamcluster"),
                               tick_mode=TickMode.PARATICK, vcpus=4)
    print(result.total_exits, result.exec_time_ns)

See ``examples/`` for runnable scenarios and ``benchmarks/`` for the
code regenerating every table and figure of the paper.
"""

from repro.config import (
    HostFeatures,
    IoDeviceKind,
    MachineSpec,
    ScenarioConfig,
    TickMode,
    VmSpec,
)
from repro.errors import (
    ConfigError,
    GuestError,
    HardwareError,
    HostError,
    ReproError,
    SimulationError,
    WorkloadError,
)
from repro.metrics.perf import RunMetrics
from repro.metrics.report import Comparison, compare_runs

__version__ = "1.0.0"

__all__ = [
    "TickMode",
    "MachineSpec",
    "VmSpec",
    "HostFeatures",
    "IoDeviceKind",
    "ScenarioConfig",
    "RunMetrics",
    "Comparison",
    "compare_runs",
    "simulate_workload",
    "ReproError",
    "SimulationError",
    "ConfigError",
    "HardwareError",
    "GuestError",
    "HostError",
    "WorkloadError",
    "__version__",
]


def simulate_workload(workload, **kwargs):
    """Convenience wrapper around :func:`repro.experiments.runner.run_workload`.

    Imported lazily so that ``import repro`` stays light.
    """
    from repro.experiments.runner import run_workload

    return run_workload(workload, **kwargs)
