"""Perturbation events: timed disturbances injected into a running VM.

A perturbation schedule is pure data — a tuple of :class:`Perturbation`
records — so it rides inside a :class:`~repro.experiments.parallel.RunSpec`
(hashable, picklable, part of the content-addressed cache key) and
expands from scenario matrices and fuzz seeds alike. Four kinds exist:

* ``suspend`` — pause the whole VM (``virsh suspend`` / SIGSTOP), then
  resume after ``duration_ns``. Host time elapses; the guest clock does
  not jump, timers keep their phase.
* ``restore`` — the same pause, but the resume models save/restore: the
  guest clock jumps forward by the suspended span and the guest kernel
  re-bases its tick machinery (:meth:`GuestKernel.on_clock_jump`).
* ``hotplug`` — bring one extra vCPU online at ``at_ns``; when
  ``duration_ns`` > 0, unplug it again that much later (LIFO).
* ``drift`` — step the guest clock offset by ``step_ns`` (signed), a
  paravirtual-clock drift between host and guest.

``count``/``period_ns`` repeat any kind: occurrence *i* starts at
``at_ns + i * period_ns``. All events are scheduled up front as
first-class simulator events, so runs stay deterministic and the
schedule itself is reproducible from the spec alone.

The injection points are deliberately *defensive*: an occurrence whose
precondition no longer holds (suspending an already-suspended VM when
two schedules overlap, unplugging when no beyond-boot vCPU remains) is
skipped rather than raised — whether it applies is a pure function of
the schedule, so determinism is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover
    from repro.host.kvm import Hypervisor, VirtualMachine

#: Recognised perturbation kinds.
KINDS = ("suspend", "restore", "hotplug", "drift")


@dataclass(frozen=True)
class Perturbation:
    """One timed disturbance (possibly repeating) applied to a VM."""

    kind: str
    #: When the first occurrence fires (absolute sim ns, >= 1 so the VM
    #: has booted).
    at_ns: int
    #: suspend/restore: span length; hotplug: plug->unplug distance
    #: (0 = stays online). Ignored for drift.
    duration_ns: int = 0
    #: Occurrences; > 1 requires ``period_ns``.
    count: int = 1
    #: Spacing between occurrence starts.
    period_ns: int = 0
    #: drift: signed offset step per occurrence. Ignored otherwise.
    step_ns: int = 0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ConfigError(f"unknown perturbation kind {self.kind!r} (know {KINDS})")
        if self.at_ns < 1:
            raise ConfigError(f"{self.kind}: at_ns must be >= 1, got {self.at_ns}")
        if self.duration_ns < 0:
            raise ConfigError(f"{self.kind}: negative duration {self.duration_ns}")
        if self.count < 1:
            raise ConfigError(f"{self.kind}: count must be >= 1, got {self.count}")
        if self.count > 1 and self.period_ns <= self.duration_ns:
            raise ConfigError(
                f"{self.kind}: repeating needs period_ns > duration_ns "
                f"({self.period_ns} <= {self.duration_ns})"
            )
        if self.kind in ("suspend", "restore") and self.duration_ns == 0:
            raise ConfigError(f"{self.kind}: a zero-length span perturbs nothing")
        if self.kind == "drift" and self.step_ns == 0:
            raise ConfigError("drift: step_ns must be non-zero")

    def describe(self) -> str:
        parts = [f"{self.kind}@{self.at_ns}"]
        if self.duration_ns:
            parts.append(f"for {self.duration_ns}")
        if self.step_ns:
            parts.append(f"step {self.step_ns:+d}")
        if self.count > 1:
            parts.append(f"x{self.count}/{self.period_ns}")
        return " ".join(parts)


def perturbation_to_dict(p: Perturbation) -> dict:
    """Canonical JSON encoding (cache keys, matrix dumps)."""
    return {
        "kind": p.kind,
        "at_ns": p.at_ns,
        "duration_ns": p.duration_ns,
        "count": p.count,
        "period_ns": p.period_ns,
        "step_ns": p.step_ns,
    }


def perturbation_from_dict(data: dict) -> Perturbation:
    """Inverse of :func:`perturbation_to_dict` (validates on build)."""
    return Perturbation(
        kind=data["kind"],
        at_ns=int(data["at_ns"]),
        duration_ns=int(data.get("duration_ns", 0)),
        count=int(data.get("count", 1)),
        period_ns=int(data.get("period_ns", 0)),
        step_ns=int(data.get("step_ns", 0)),
    )


# --------------------------------------------------------------- injection


def install_perturbations(
    hv: "Hypervisor", vm: "VirtualMachine", perturbations: Iterable[Perturbation]
) -> int:
    """Schedule every occurrence of every perturbation as sim events.

    Call after the VM is built but before (or after) ``hv.start()`` —
    all times are absolute. Returns the number of simulator events
    scheduled.
    """
    sim = hv.sim
    scheduled = 0
    for p in perturbations:
        for i in range(p.count):
            start = p.at_ns + i * p.period_ns
            if p.kind in ("suspend", "restore"):
                restore = p.kind == "restore"
                sim.at(start, _suspender(hv, vm))
                sim.at(start + p.duration_ns, _resumer(hv, vm, restore))
                scheduled += 2
            elif p.kind == "hotplug":
                sim.at(start, _plugger(hv, vm))
                scheduled += 1
                if p.duration_ns:
                    sim.at(start + p.duration_ns, _unplugger(hv, vm))
                    scheduled += 1
            else:  # drift
                sim.at(start, _drifter(hv, vm, p.step_ns))
                scheduled += 1
    return scheduled


def _suspender(hv, vm):
    def fire() -> None:
        if not vm.suspended:
            hv.suspend_vm(vm)

    return fire


def _resumer(hv, vm, restore: bool):
    def fire() -> None:
        if vm.suspended:
            hv.resume_vm(vm, clock_jump=restore)

    return fire


def _plugger(hv, vm):
    def fire() -> None:
        if not vm.suspended:
            hv.hotplug_vcpu(vm)

    return fire


def _unplugger(hv, vm):
    def fire() -> None:
        if vm.suspended or len(vm.vcpus) <= vm.boot_vcpus:
            return
        index = len(vm.vcpus) - 1
        if vm.kernel is not None and vm.kernel.sched.has_work(index):
            return  # a task landed there; leave the vCPU online
        hv.unplug_vcpu(vm, index)

    return fire


def _drifter(hv, vm, step_ns: int):
    def fire() -> None:
        hv.drift_guest_clock(vm, step_ns)

    return fire
