"""The hypervisor: vCPU executors, VM exits, injection, host ticks.

This module is the simulator's KVM. Each vCPU is driven by a
:class:`_VcpuExec` state machine that consumes the guest's primitive-op
stream (:mod:`repro.guest.ops`) and models the hardware-assisted
virtualization behaviour the paper analyses:

* synchronous exits for intercepted instructions — ``WRMSR
  TSC_DEADLINE`` (tag TIMER_PROGRAM), ``WRMSR ICR`` (IPIs), ``HLT``,
  I/O kicks, hypercalls;
* asynchronous exits — host scheduler ticks (EXTERNAL_INTERRUPT, tag
  TIMER_HOST_TICK), device completions and IPIs arriving while the vCPU
  runs;
* the KVM **preemption-timer optimization** (§3): guest deadline writes
  arm the VMX preemption timer, whose expiry is a cheaper
  PREEMPTION_TIMER exit; while the vCPU is blocked, a host-side timer
  stands in;
* **interrupt injection on VM entry**, which is also where the paratick
  host hook lives (§5.1 / Fig. 2): update ``last_tick`` when a local
  timer interrupt is about to be injected, else inject virtual tick 235
  when a tick period has elapsed.

Timing/accounting convention: every segment of host or guest execution
is accounted *in arrears*, when the segment's completion event fires.
A preempted guest compute segment accounts only its elapsed portion and
its remainder is re-queued at the front of the guest op stream.
"""

from __future__ import annotations

from typing import Optional

from repro.config import HostFeatures, VmSpec
from repro.errors import HostError
from repro.guest import ops as gops
from repro.hw.cpu import CycleDomain, Machine
from repro.hw.interrupts import Vector
from repro.hw.iodev import IoRequest
from repro.hw.msr import Msr
from repro.hw.preemption import PreemptionTimer
from repro.hw.tsc import Tsc
from repro.host.costs import DEFAULT_COSTS, CostModel
from repro.host.exitreasons import ExitReason, ExitTag
from repro.host.sched import HostScheduler
from repro.host.vcpu import VCpu, VcpuState
from repro.metrics.counters import ExitCounters
from repro.sim.engine import Simulator

#: Hypercall numbers.
HC_PARATICK_SET_PERIOD = 1

#: Safety bound on zero-duration guest ops handled back-to-back.
_MAX_OP_CHAIN = 100_000


class VirtualMachine:
    """One guest VM: spec, vCPUs, exit counters and paratick host state."""

    def __init__(self, hv: "Hypervisor", spec: VmSpec, vcpus: list[VCpu]):
        self.hv = hv
        self.spec = spec
        self.vcpus = vcpus
        self.counters = ExitCounters()
        self.kernel = None  # attached by the guest side
        #: Paratick host state (set by the boot hypercall, §4.1).
        self.paratick_enabled = False
        self.paratick_period_ns = 0
        #: Virtual ticks (vector 235) injected across all vCPUs.
        self.virtual_ticks_injected = 0

    @property
    def name(self) -> str:
        return self.spec.name

    def attach_kernel(self, kernel) -> None:
        """Wire the guest kernel driving this VM's vCPUs."""
        if self.kernel is not None:
            raise HostError(f"VM {self.name}: kernel already attached")
        self.kernel = kernel

    def handle_hypercall(self, vcpu: VCpu, nr: int, arg: int) -> None:
        """Service a VMCALL from the guest."""
        if nr == HC_PARATICK_SET_PERIOD:
            if arg <= 0:
                raise HostError(f"VM {self.name}: invalid paratick period {arg}")
            self.paratick_period_ns = arg
            self.paratick_enabled = True
            now = self.hv.sim.now
            for v in self.vcpus:
                v.last_virtual_tick_ns = now
        else:
            raise HostError(f"VM {self.name}: unknown hypercall {nr}")


class Hypervisor:
    """Machine-wide hypervisor state: VMs, host scheduler, host ticks."""

    def __init__(
        self,
        sim: Simulator,
        machine: Machine,
        *,
        costs: CostModel = DEFAULT_COSTS,
        features: HostFeatures = HostFeatures(),
    ):
        self.sim = sim
        self.machine = machine
        self.costs = costs
        self.features = features
        self.tsc = Tsc(sim, machine.clock)
        self.sched = HostScheduler(machine.spec.total_cpus)
        self.vms: list[VirtualMachine] = []
        self._host_tick_events: dict[int, object] = {}
        self._next_auto_cpu = 0

    # ----------------------------------------------------------- VM set-up

    def create_vm(self, spec: VmSpec) -> VirtualMachine:
        """Create a VM, placing its vCPUs on physical CPUs."""
        cpus = spec.pinned_cpus
        if cpus is None:
            total = self.machine.spec.total_cpus
            cpus = tuple((self._next_auto_cpu + i) % total for i in range(spec.vcpus))
            self._next_auto_cpu = (self._next_auto_cpu + spec.vcpus) % total
        vcpus = [VCpu(i, spec.name, self.machine.cpu(c)) for i, c in enumerate(cpus)]
        vm = VirtualMachine(self, spec, vcpus)
        for v in vcpus:
            v.exec = _VcpuExec(self, vm, v)
        self.vms.append(vm)
        return vm

    def start(self) -> None:
        """Boot every VM: all vCPUs become runnable at t=now."""
        for vm in self.vms:
            if vm.kernel is None:
                raise HostError(f"VM {vm.name} has no kernel attached")
            for v in vm.vcpus:
                v.exec.start()

    # ---------------------------------------------------------- interrupts

    def send_ipi(self, vm: VirtualMachine, src: VCpu, dest_index: int, vector: Vector) -> None:
        """Deliver an inter-processor interrupt between two vCPUs of a VM."""
        if not 0 <= dest_index < len(vm.vcpus):
            raise HostError(f"VM {vm.name}: IPI to unknown vCPU {dest_index}")
        dest = vm.vcpus[dest_index]
        cross = not self.machine.same_socket(src.pcpu.index, dest.pcpu.index)
        dest.exec.deliver(vector, ExitTag.IPI, cross_socket=cross)

    def deliver_device_irq(self, vm: VirtualMachine, vcpu_index: int, vector: Vector) -> None:
        """Inject a device completion interrupt into a vCPU."""
        vm.vcpus[vcpu_index].exec.deliver(vector, ExitTag.IO)

    def complete_io_request(
        self,
        vm: VirtualMachine,
        vcpu_index: int,
        req: IoRequest,
        *,
        vector: Vector = Vector.BLOCK_IO,
    ) -> None:
        """Device completion path: vhost backend work, then injection.

        The backend work runs on a host service thread concurrently with
        whatever the vCPU is doing, so its cycles are accounted without
        occupying the vCPU's timeline; the interrupt reaches the guest
        after the backend latency.
        """
        vcpu = vm.vcpus[vcpu_index]
        backend_ns = self.machine.clock.cycles_to_ns(self.costs.host_io_backend)
        vcpu.pcpu.account(CycleDomain.HOST_IO, backend_ns)
        self.sim.schedule(backend_ns, self._deliver_io_completion, vm, vcpu_index, req, vector)

    #: Backwards-compatible name (block devices were wired first).
    complete_block_request = complete_io_request

    def _deliver_io_completion(
        self, vm: VirtualMachine, vcpu_index: int, req: IoRequest, vector: Vector
    ) -> None:
        vm.kernel.io_complete(vcpu_index, req)
        self.deliver_device_irq(vm, vcpu_index, vector)

    # ----------------------------------------------------------- host tick

    def ensure_host_tick(self, pcpu_index: int) -> None:
        """Keep the host tick running on a CPU that is executing guests.

        The host itself runs dynticks: its tick is live only while the
        CPU is busy (which is when it matters to paratick — §4.1 relies
        on host ticks interrupting *running* vCPUs).
        """
        if self._host_tick_events.get(pcpu_index) is not None:
            return
        period = self.machine.spec.host_tick_period_ns
        next_fire = (self.sim.now // period + 1) * period
        self._host_tick_events[pcpu_index] = self.sim.at(next_fire, self._host_tick, pcpu_index)

    def _host_tick(self, pcpu_index: int) -> None:
        self._host_tick_events[pcpu_index] = None
        vcpu = self.sched.running_on(pcpu_index)
        if vcpu is None or vcpu.state in (VcpuState.HALTED, VcpuState.OFF):
            return  # CPU idle: host is tickless, chain stops until next dispatch
        period = self.machine.spec.host_tick_period_ns
        self._host_tick_events[pcpu_index] = self.sim.schedule(period, self._host_tick, pcpu_index)
        vcpu.exec.host_tick_interrupt(preempt=self.sched.wants_preemption(pcpu_index))

    # ------------------------------------------------------------- readouts

    def find_vm(self, name: str) -> VirtualMachine:
        for vm in self.vms:
            if vm.name == name:
                return vm
        raise HostError(f"no VM named {name!r}")

    def total_exits(self) -> int:
        return sum(vm.counters.total for vm in self.vms)


class _VcpuExec:
    """Per-vCPU execution state machine (the KVM vcpu_run loop)."""

    __slots__ = (
        "hv",
        "sim",
        "vm",
        "vcpu",
        "costs",
        "clock",
        "preempt_timer",
        "_cur_op",
        "_cur_start",
        "_cur_dur",
        "_cur_event",
        "_host_deadline_event",
        "_polling",
        "_poll_event",
        "_poll_start",
        "_virt_periodic_ns",
        "_periodic_event",
        "_pending_sched_ns",
    )

    def __init__(self, hv: Hypervisor, vm: VirtualMachine, vcpu: VCpu):
        self.hv = hv
        self.sim = hv.sim
        self.vm = vm
        self.vcpu = vcpu
        self.costs = hv.costs
        self.clock = hv.machine.clock
        self.preempt_timer = PreemptionTimer(
            hv.sim, self._on_preempt_timer, name=f"{vm.name}/vcpu{vcpu.index}"
        )
        self._cur_op: Optional[gops.Compute] = None
        self._cur_start = 0
        self._cur_dur = 0
        self._cur_event = None
        self._host_deadline_event = None
        self._polling = False
        self._poll_event = None
        self._poll_start = 0
        self._virt_periodic_ns = 0
        self._periodic_event = None
        #: Scheduler work (block swtch, wake of a contended vCPU) whose
        #: cost is deferred until it can occupy this vCPU's timeline.
        self._pending_sched_ns = 0

    def _trace(self, kind: str, detail=None, *, suffix: str = "") -> None:
        """Emit a structured event for this vCPU (callers building tuple
        details should pre-check ``sim.trace.enabled`` themselves)."""
        trace = self.sim.trace
        if trace.enabled:
            trace.emit(
                self.sim.now, f"{self.vm.name}/vcpu{self.vcpu.index}{suffix}", kind, detail
            )

    # ------------------------------------------------------------ lifecycle

    def start(self) -> None:
        """Make the vCPU runnable for the first time."""
        if self.vcpu.state is not VcpuState.INIT:
            raise HostError(f"{self.vcpu!r} started twice")
        self.vcpu.state = VcpuState.EXITED
        if self.hv.sched.acquire(self.vcpu):
            self._enter_guest()
        # else: queued READY; dispatched when the CPU frees up.

    def shutdown(self) -> None:
        """Stop driving this vCPU."""
        self._cancel_cur()
        self._cancel_host_deadline()
        if self._periodic_event is not None:
            self.sim.cancel(self._periodic_event)
            self._periodic_event = None
            self._trace("lapic_disarm", suffix="/vlapic")
        self.preempt_timer.stop()
        self.hv.sched.forget(self.vcpu)
        self.vcpu.state = VcpuState.OFF

    # ------------------------------------------------------------- VM entry

    def _enter_guest(self) -> None:
        """Begin the VM-entry sequence (we hold the physical CPU)."""
        vcpu = self.vcpu
        self._cancel_host_deadline()
        self.hv.ensure_host_tick(vcpu.pcpu.index)
        # Paratick host hook (Fig. 2): runs on every VM entry.
        if self.vm.paratick_enabled:
            now = self.sim.now
            if vcpu.has_pending_timer_irq and self.hv.features.paratick_last_tick_heuristic:
                # Heuristic of §5.1: the pending guest timer interrupt
                # will act as a tick.
                vcpu.last_virtual_tick_ns = now
            elif now - vcpu.last_virtual_tick_ns >= self.vm.paratick_period_ns:
                if vcpu.post_irq(Vector.PARATICK_VIRTUAL_TICK):
                    self.vm.virtual_ticks_injected += 1
                vcpu.last_virtual_tick_ns = now
        vectors = vcpu.drain_irqs()
        if vectors and self.sim.trace.enabled:
            self.sim.trace.emit(
                self.sim.now, f"{self.vm.name}/vcpu{vcpu.index}", "inject",
                tuple(int(v) for v in vectors),
            )
        c = self.costs
        entry_cycles = c.vmentry_hw + c.inject_irq * len(vectors)
        entry_ns = self.clock.cycles_to_ns(entry_cycles)
        pollution_ns = self.clock.cycles_to_ns(c.pollution)
        self.sim.schedule(entry_ns + pollution_ns, self._entered, vectors, entry_ns, pollution_ns)

    def _entered(self, vectors: tuple, entry_ns: int, pollution_ns: int) -> None:
        vcpu = self.vcpu
        vcpu.pcpu.account(CycleDomain.VMX_TRANSITION, entry_ns)
        vcpu.pcpu.account(CycleDomain.POLLUTION, pollution_ns)
        vcpu.state = VcpuState.GUEST
        deadline = vcpu.guest_deadline_ns
        if (
            self.hv.features.paratick_rate_adapt
            and self.vm.paratick_enabled
            and self.vm.paratick_period_ns > 0
        ):
            # §4.1 rate adaptation: guarantee an injection opportunity
            # once per guest tick period even if the host tick is slower.
            backstop = vcpu.last_virtual_tick_ns + self.vm.paratick_period_ns
            if deadline is None or backstop < deadline:
                deadline = backstop
        self.preempt_timer.set_deadline(deadline)
        self.preempt_timer.start()
        if vectors:
            self.vm.kernel.on_interrupts(vcpu.index, vectors)
        self._next_op()

    # ----------------------------------------------------------- op stream

    def _next_op(self) -> None:
        kernel = self.vm.kernel
        vcpu = self.vcpu
        for _ in range(_MAX_OP_CHAIN):
            op = kernel.next_op(vcpu.index)
            if op is None:
                self.shutdown()
                return
            if isinstance(op, gops.Compute):
                if op.cycles == 0:
                    if op.on_done is not None:
                        op.on_done()
                    continue
                self._cur_op = op
                self._cur_start = self.sim.now
                self._cur_dur = self.clock.cycles_to_ns(op.cycles)
                self._cur_event = self.sim.schedule(self._cur_dur, self._compute_done)
                return
            if isinstance(op, gops.Pause) and not self.hv.features.ple:
                # Without pause-loop exiting, spinning is just compute.
                self._cur_op = gops.Compute(op.cycles, CycleDomain.GUEST_KERNEL)
                self._cur_start = self.sim.now
                self._cur_dur = self.clock.cycles_to_ns(op.cycles)
                self._cur_event = self.sim.schedule(self._cur_dur, self._compute_done)
                return
            self._sync_exit(op)
            return
        raise HostError(f"{vcpu!r}: guest op stream made no progress")

    def _compute_done(self) -> None:
        op = self._cur_op
        self.vcpu.pcpu.account(op.domain, self.sim.now - self._cur_start)
        self._cur_op = self._cur_event = None
        if op.on_done is not None:
            op.on_done()
        self._next_op()

    def _cancel_cur(self) -> None:
        """Truncate an in-flight compute: account elapsed, re-queue rest."""
        if self._cur_op is None:
            return
        op = self._cur_op
        elapsed = self.sim.now - self._cur_start
        if elapsed > 0:
            self.vcpu.pcpu.account(op.domain, elapsed)
        self.sim.cancel(self._cur_event)
        remaining = self.clock.ns_to_cycles(self._cur_dur - elapsed)
        if remaining > 0:
            self.vm.kernel.requeue_front(
                self.vcpu.index, gops.Compute(remaining, op.domain, op.on_done)
            )
        elif op.on_done is not None:
            # The interrupt landed exactly at completion; finish the op.
            op.on_done()
        self._cur_op = self._cur_event = None

    # ------------------------------------------------------------- VM exits

    def _sync_exit(self, op: gops.GuestOp) -> None:
        """Take a synchronous exit for an intercepted instruction."""
        c = self.costs
        if isinstance(op, gops.Wrmsr):
            if op.index == Msr.TSC_DEADLINE:
                self._begin_exit(
                    ExitReason.MSR_WRITE,
                    ExitTag.TIMER_PROGRAM,
                    c.handler_msr_tsc_deadline,
                    lambda: self._apply_deadline(op.value),
                )
            elif op.index == Msr.X2APIC_TMICT:
                # Virtual LAPIC in periodic mode: KVM emulates the
                # repeating timer host-side (classic periodic ticks, §3.1).
                self._begin_exit(
                    ExitReason.MSR_WRITE,
                    ExitTag.TIMER_PROGRAM,
                    c.handler_msr_tsc_deadline,
                    lambda: self._start_virtual_periodic(op.value),
                )
            elif op.index == Msr.X2APIC_EOI:
                self._begin_exit(ExitReason.MSR_WRITE, ExitTag.EOI, c.handler_msr_eoi, None)
            elif op.index == Msr.X2APIC_ICR:
                dest, vector = divmod(op.value, 256)
                self._begin_exit(
                    ExitReason.MSR_WRITE,
                    ExitTag.IPI,
                    c.handler_msr_icr,
                    lambda: self.hv.send_ipi(self.vm, self.vcpu, dest, Vector(vector)),
                )
            else:
                self._begin_exit(ExitReason.MSR_WRITE, ExitTag.OTHER, c.handler_msr_tsc_deadline, None)
        elif isinstance(op, gops.Hlt):
            self._begin_exit(ExitReason.HLT, ExitTag.IDLE, c.handler_hlt, None, then=self._halt)
        elif isinstance(op, gops.IoKick):
            self._begin_exit(
                ExitReason.IO_INSTRUCTION,
                ExitTag.IO,
                c.handler_io_kick,
                lambda: self._submit_io(op),
            )
        elif isinstance(op, gops.Hypercall):
            self._begin_exit(
                ExitReason.HYPERCALL,
                ExitTag.HYPERCALL,
                c.handler_hypercall,
                lambda: self.vm.handle_hypercall(self.vcpu, op.nr, op.arg),
            )
        elif isinstance(op, gops.Pause):
            self._begin_exit(ExitReason.PAUSE, ExitTag.OTHER, c.handler_pause, None)
        elif isinstance(op, gops.Fault):
            self._begin_exit(ExitReason.EPT_VIOLATION, ExitTag.OTHER, c.handler_ept, None)
        else:
            raise HostError(f"unknown guest op {op!r}")

    def _begin_exit(self, reason, tag, handler_cycles, effect, then=None) -> None:
        """Common exit path: stop the clock sources, cost it, continue.

        ``effect`` runs when the handler completes (hypervisor-side state
        change); ``then`` overrides the default continuation of
        re-entering the guest.
        """
        vcpu = self.vcpu
        vcpu.state = VcpuState.EXITED
        self.preempt_timer.stop()
        self.vm.counters.record(vcpu.index, reason, tag)
        if self.sim.trace.enabled:
            self.sim.trace.emit(
                self.sim.now, f"{self.vm.name}/vcpu{vcpu.index}", "vmexit",
                (reason.value, tag.value),
            )
        c = self.costs
        exit_hw_ns = self.clock.cycles_to_ns(c.vmexit_hw)
        handler_ns = self.clock.cycles_to_ns(handler_cycles)
        self.sim.schedule(
            exit_hw_ns + handler_ns, self._exit_work_done, exit_hw_ns, handler_ns, effect, then
        )

    def _exit_work_done(self, exit_hw_ns, handler_ns, effect, then) -> None:
        pcpu = self.vcpu.pcpu
        pcpu.account(CycleDomain.VMX_TRANSITION, exit_hw_ns)
        pcpu.account(CycleDomain.HOST_HANDLER, handler_ns)
        if effect is not None:
            effect()
        if self.vcpu.state is VcpuState.OFF:
            return
        if then is not None:
            then()
        else:
            self._enter_guest()

    # -------------------------------------------------------- exit effects

    def _apply_deadline(self, tsc_value: int) -> None:
        """KVM's TSC_DEADLINE write handler (preemption-timer optimization)."""
        if tsc_value == 0:
            self.vcpu.guest_deadline_ns = None
            self.preempt_timer.clear()
            self._trace("deadline_clear")
        else:
            self.vcpu.guest_deadline_ns = self.hv.tsc.deadline_to_ns(tsc_value)
            self._trace("deadline_set", self.vcpu.guest_deadline_ns)

    def _start_virtual_periodic(self, period_ns: int) -> None:
        """Guest armed its virtual LAPIC in periodic mode."""
        if period_ns <= 0:
            raise HostError(f"{self.vcpu!r}: invalid periodic LAPIC period {period_ns}")
        if self._periodic_event is not None:
            self.sim.cancel(self._periodic_event)
            self._trace("lapic_disarm", suffix="/vlapic")
        self._virt_periodic_ns = period_ns
        self._periodic_event = self.sim.schedule(period_ns, self._virtual_periodic_fire)
        if self.sim.trace.enabled:
            self._trace("lapic_arm", ("periodic", self.sim.now + period_ns), suffix="/vlapic")

    def _virtual_periodic_fire(self) -> None:
        """One period elapsed: deliver a tick, waking the vCPU if halted."""
        if self.sim.trace.enabled:
            self._trace("lapic_fire", ("periodic", int(Vector.LOCAL_TIMER)), suffix="/vlapic")
        self._periodic_event = self.sim.schedule(self._virt_periodic_ns, self._virtual_periodic_fire)
        self.deliver(Vector.LOCAL_TIMER, ExitTag.TIMER_GUEST_TICK)

    def _submit_io(self, op: gops.IoKick) -> None:
        op.request.cookie = (self.vcpu.index, op.request.cookie)
        op.device.submit(op.request)

    # ------------------------------------------------------------- halting

    def _halt(self) -> None:
        """HLT continuation: poll (optionally), then block."""
        if self.vcpu.pending_irqs:
            # An interrupt arrived during exit processing: do not block.
            self._enter_guest()
            return
        if self.hv.features.halt_poll_ns > 0:
            self._polling = True
            self._poll_start = self.sim.now
            self._poll_event = self.sim.schedule(self.hv.features.halt_poll_ns, self._poll_timeout)
            return
        self._block()

    def _poll_timeout(self) -> None:
        self._polling = False
        self._poll_event = None
        self.vcpu.pcpu.account(CycleDomain.HALT_POLL, self.sim.now - self._poll_start)
        self._block()

    def _block(self) -> None:
        vcpu = self.vcpu
        block_ns = self.clock.cycles_to_ns(self.costs.block_vcpu)
        vcpu.state = VcpuState.HALTED
        vcpu.halted_since_ns = self.sim.now
        self._arm_host_deadline()
        nxt = self.hv.sched.release(vcpu)
        if nxt is not None:
            # The block-side swtch work delays whoever takes the CPU;
            # booking it here in zero sim-time would overbook the shared
            # timeline (the successor starts its own costs at this same
            # instant).
            nxt.exec.dispatch(extra_ns=block_ns)
        else:
            # CPU going idle: pay the swtch cost when this vCPU next
            # occupies the timeline (its wake).
            self._pending_sched_ns += block_ns

    def _arm_host_deadline(self) -> None:
        """While not in guest mode, a host timer stands in for the
        preemption timer so guest-programmed deadlines still fire."""
        deadline = self.vcpu.guest_deadline_ns
        if deadline is None:
            return
        when = max(deadline, self.sim.now)
        self._host_deadline_event = self.sim.at(when, self._host_deadline_fired)
        self._trace("hostdl_arm", when)

    def _cancel_host_deadline(self) -> None:
        if self._host_deadline_event is not None:
            self.sim.cancel(self._host_deadline_event)
            self._host_deadline_event = None
            self._trace("hostdl_cancel")

    def _host_deadline_fired(self) -> None:
        self._host_deadline_event = None
        deadline = self.vcpu.guest_deadline_ns
        self.vcpu.guest_deadline_ns = None
        self.preempt_timer.clear()
        if self.sim.trace.enabled:
            self._trace("hostdl_fire")
            self._trace("deadline_fire", (deadline, "host"))
        self.deliver(Vector.LOCAL_TIMER, ExitTag.TIMER_GUEST_TICK)

    def dispatch(self, *, extra_ns: int = 0) -> None:
        """The host scheduler gave us the CPU (overcommit path).

        ``extra_ns`` carries the outgoing vCPU's block-side swtch cost;
        any deferred wake cost of this vCPU is also paid here — both
        now occupy the timeline, serialized before guest entry.

        The READY wait that ends here is this vCPU's *steal time*
        (runnable but not running); it is accounted on the vCPU the way
        KVM feeds the guest's steal-time MSR.
        """
        vcpu = self.vcpu
        if vcpu.state is not VcpuState.READY:
            raise HostError(f"dispatch of {vcpu!r} in state {vcpu.state}")
        stolen_ns = self.sim.now - vcpu.ready_since_ns
        vcpu.total_steal_ns += stolen_ns
        vcpu.steal_episodes += 1
        if self.sim.trace.enabled:
            self._trace("sched_dispatch", (vcpu.pcpu.index, stolen_ns))
        vcpu.state = VcpuState.EXITED
        ctx_ns = self.clock.cycles_to_ns(self.costs.ctx_switch)
        ctx_ns += extra_ns + self._pending_sched_ns
        self._pending_sched_ns = 0
        self.vcpu.pcpu.account(CycleDomain.HOST_SCHED, ctx_ns)
        self.sim.schedule(ctx_ns, self._enter_guest)

    # ----------------------------------------------------- async interrupts

    def deliver(self, vector: Vector, tag: ExitTag, *, cross_socket: bool = False) -> None:
        """An interrupt for this vCPU arrived (device, IPI or stand-in timer)."""
        vcpu = self.vcpu
        state = vcpu.state
        if state is VcpuState.OFF:
            return
        vcpu.post_irq(vector)
        if state is VcpuState.GUEST:
            # Forces an external-interrupt exit; injected on re-entry.
            self._cancel_cur()
            self._begin_exit(
                ExitReason.EXTERNAL_INTERRUPT, tag, self.costs.handler_external_interrupt, None
            )
        elif state is VcpuState.HALTED:
            self._wake(cross_socket=cross_socket)
        elif state is VcpuState.EXITED and self._polling:
            self._finish_poll_hit()
        # EXITED (not polling) / READY / INIT: stays pending, injected at
        # the next VM entry — no additional exit, like a real posted IRR bit.

    def _finish_poll_hit(self) -> None:
        """Halt polling succeeded: skip the block/wake round trip."""
        self._polling = False
        self.sim.cancel(self._poll_event)
        self._poll_event = None
        self.vcpu.pcpu.account(CycleDomain.HALT_POLL, self.sim.now - self._poll_start)
        self._enter_guest()

    def _wake(self, *, cross_socket: bool = False) -> None:
        vcpu = self.vcpu
        self._cancel_host_deadline()
        halted = self.sim.now - vcpu.halted_since_ns
        vcpu.total_halted_ns += halted
        vcpu.halt_episodes += 1
        vcpu.state = VcpuState.EXITED
        wake_cycles = self.costs.wake_vcpu
        if cross_socket:
            wake_cycles = int(wake_cycles * self.hv.machine.spec.cross_socket_penalty)
        wake_ns = self.clock.cycles_to_ns(wake_cycles)
        cstate = vcpu.requested_cstate
        if cstate is not None:
            # cpuidle model: the deeper the state, the longer the exit.
            name = cstate.name
            vcpu.cstate_residency_ns[name] = vcpu.cstate_residency_ns.get(name, 0) + halted
            wake_ns += cstate.exit_latency_ns
            vcpu.requested_cstate = None
        wake_ns += self._pending_sched_ns
        self._pending_sched_ns = 0
        if self.hv.sched.acquire(vcpu):
            vcpu.pcpu.account(CycleDomain.HOST_SCHED, wake_ns)
            self.sim.schedule(wake_ns, self._enter_guest)
        else:
            # READY behind another vCPU: the pCPU is busy right now, so
            # the wake/C-state-exit work is paid at dispatch, when it
            # actually occupies the timeline.
            self._pending_sched_ns = wake_ns

    # ------------------------------------------------- timer & host tick

    def _on_preempt_timer(self) -> None:
        """VMX preemption timer expired in guest mode.

        Either the guest's own deadline passed (§3 — the 'less costly'
        exit, inject LOCAL_TIMER) or the §4.1 rate-adaptation backstop
        fired before any guest deadline — then the exit exists purely so
        the re-entry hook can inject a virtual tick.
        """
        vcpu = self.vcpu
        if vcpu.state is not VcpuState.GUEST:
            raise HostError("preemption timer fired outside guest mode")
        self._cancel_cur()
        gd = vcpu.guest_deadline_ns
        if gd is not None and self.sim.now >= gd:
            # The guest's own deadline passed: consume it, inject its
            # timer interrupt on re-entry.
            vcpu.guest_deadline_ns = None
            if self.sim.trace.enabled:
                self._trace("deadline_fire", (gd, "ptimer"))
            vcpu.post_irq(Vector.LOCAL_TIMER)
            self._begin_exit(
                ExitReason.PREEMPTION_TIMER,
                ExitTag.TIMER_GUEST_TICK,
                self.costs.handler_preemption_timer,
                None,
            )
            return
        # Rate-adaptation backstop: no guest deadline was due; the exit
        # exists purely so the entry hook can inject a virtual tick.
        self._begin_exit(
            ExitReason.PREEMPTION_TIMER,
            ExitTag.TIMER_HOST_TICK,
            self.costs.handler_preemption_timer,
            None,
        )

    def host_tick_interrupt(self, *, preempt: bool) -> None:
        """The host scheduler tick fired on our physical CPU."""
        vcpu = self.vcpu
        if vcpu.state is VcpuState.GUEST:
            self._cancel_cur()
            extra = self.costs.host_tick_handler
            then = self._preempt_requeue if preempt else None
            self._begin_exit(
                ExitReason.EXTERNAL_INTERRUPT,
                ExitTag.TIMER_HOST_TICK,
                self.costs.handler_external_interrupt + extra,
                None,
                then=then,
            )
        else:
            # Tick arrived while already in root mode: host-side work only,
            # no VM exit. Runs concurrently with the in-flight exit
            # processing (approximation: does not stretch the sequence).
            self.vcpu.pcpu.account(
                CycleDomain.HOST_TICK, self.clock.cycles_to_ns(self.costs.host_tick_handler)
            )

    def _preempt_requeue(self) -> None:
        """Host tick boundary with waiters: rotate this CPU (overcommit)."""
        vcpu = self.vcpu
        nxt = self.hv.sched.release(vcpu)
        self.hv.sched.requeue(vcpu)
        self._trace("sched_preempt", vcpu.pcpu.index)
        self._arm_host_deadline()
        if nxt is not None:
            nxt.exec.dispatch()
