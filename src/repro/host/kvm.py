"""The hypervisor: vCPU executors, VM exits, injection, host ticks.

This module is the simulator's KVM. Each vCPU is driven by a
:class:`_VcpuExec` state machine that consumes the guest's primitive-op
stream (:mod:`repro.guest.ops`) and models the hardware-assisted
virtualization behaviour the paper analyses:

* synchronous exits for intercepted instructions — ``WRMSR
  TSC_DEADLINE`` (tag TIMER_PROGRAM), ``WRMSR ICR`` (IPIs), ``HLT``,
  I/O kicks, hypercalls;
* asynchronous exits — host scheduler ticks (EXTERNAL_INTERRUPT, tag
  TIMER_HOST_TICK), device completions and IPIs arriving while the vCPU
  runs;
* the KVM **preemption-timer optimization** (§3): guest deadline writes
  arm the VMX preemption timer, whose expiry is a cheaper
  PREEMPTION_TIMER exit; while the vCPU is blocked, a host-side timer
  stands in;
* **interrupt injection on VM entry**, which is also where the paratick
  host hook lives (§5.1 / Fig. 2): update ``last_tick`` when a local
  timer interrupt is about to be injected, else inject virtual tick 235
  when a tick period has elapsed.

Timing/accounting convention: every segment of host or guest execution
is accounted *in arrears*, when the segment's completion event fires.
A preempted guest compute segment accounts only its elapsed portion and
its remainder is re-queued at the front of the guest op stream.
"""

from __future__ import annotations

from typing import Optional

from repro.config import HostFeatures, VmSpec
from repro.errors import HostError
from repro.guest import ops as gops
from repro.hw.cpu import CycleDomain, Machine
from repro.hw.interrupts import Vector
from repro.hw.iodev import IoRequest
from repro.hw.lapic import LapicTimer
from repro.hw.preemption import PreemptionTimer
from repro.hw.timerhw import make_timer_hardware
from repro.hw.tsc import Tsc
from repro.host.costs import DEFAULT_COSTS, CostModel
from repro.host.exitreasons import ExitReason, ExitTag
from repro.host.sched import HostScheduler
from repro.host.vcpu import VCpu, VcpuState
from repro.metrics.counters import ExitCounters
from repro.sim.engine import Simulator

#: Hypercall numbers.
HC_PARATICK_SET_PERIOD = 1

#: Safety bound on zero-duration guest ops handled back-to-back.
_MAX_OP_CHAIN = 100_000


class VirtualMachine:
    """One guest VM: spec, vCPUs, exit counters and paratick host state."""

    def __init__(self, hv: "Hypervisor", spec: VmSpec, vcpus: list[VCpu]):
        self.hv = hv
        self.spec = spec
        self.vcpus = vcpus
        self.counters = ExitCounters()
        self.kernel = None  # attached by the guest side
        #: Paratick host state (set by the boot hypercall, §4.1).
        self.paratick_enabled = False
        self.paratick_period_ns = 0
        #: Virtual ticks (vector 235) injected across all vCPUs.
        self.virtual_ticks_injected = 0
        #: vCPU count at boot; hotplug grows ``vcpus`` beyond this and
        #: only indices at or past it may be unplugged again.
        self.boot_vcpus = len(vcpus)
        # ---- perturbation state (repro.host.perturb) ----
        #: True while the VM is frozen between suspend_vm and resume_vm.
        self.suspended = False
        #: When the current suspended span began (host time).
        self.suspend_epoch_ns = 0
        self.suspend_count = 0
        #: Host time spent suspended across all closed spans.
        self.total_suspended_ns = 0
        #: Guest-visible clock jump accumulated by save/restore cycles.
        self.clock_jump_ns = 0
        #: Signed guest-vs-host clock offset (clock-drift perturbation);
        #: applied when guest deadline writes are converted to host time.
        self.guest_clock_offset_ns = 0
        self.hotplug_count = 0
        self.unplug_count = 0
        #: Steal counters of unplugged vCPUs, keyed by trace source —
        #: kept so trace-derived steal still reconciles after teardown.
        self.retired_steal: dict[str, tuple[int, int]] = {}

    @property
    def name(self) -> str:
        return self.spec.name

    def attach_kernel(self, kernel) -> None:
        """Wire the guest kernel driving this VM's vCPUs."""
        if self.kernel is not None:
            raise HostError(f"VM {self.name}: kernel already attached")
        self.kernel = kernel

    def handle_hypercall(self, vcpu: VCpu, nr: int, arg: int) -> None:
        """Service a VMCALL from the guest."""
        if nr == HC_PARATICK_SET_PERIOD:
            if arg <= 0:
                raise HostError(f"VM {self.name}: invalid paratick period {arg}")
            self.paratick_period_ns = arg
            self.paratick_enabled = True
            now = self.hv.sim.now
            for v in self.vcpus:
                v.last_virtual_tick_ns = now
        else:
            raise HostError(f"VM {self.name}: unknown hypercall {nr}")


class Hypervisor:
    """Machine-wide hypervisor state: VMs, host scheduler, host ticks."""

    def __init__(
        self,
        sim: Simulator,
        machine: Machine,
        *,
        costs: CostModel = DEFAULT_COSTS,
        features: HostFeatures = HostFeatures(),
        arch: str = "x86",
    ):
        self.sim = sim
        self.machine = machine
        self.costs = costs
        self.features = features
        self.tsc = Tsc(sim, machine.clock)
        self.arch = arch
        self.timerhw = make_timer_hardware(arch, self)
        self.sched = HostScheduler(machine.spec.total_cpus)
        self.vms: list[VirtualMachine] = []
        self._host_tick_events: dict[int, object] = {}
        self._next_auto_cpu = 0

    # ----------------------------------------------------------- VM set-up

    def create_vm(self, spec: VmSpec) -> VirtualMachine:
        """Create a VM, placing its vCPUs on physical CPUs."""
        if spec.arch != self.arch:
            raise HostError(
                f"VM {spec.name}: arch {spec.arch!r} does not match "
                f"hypervisor arch {self.arch!r}"
            )
        cpus = spec.pinned_cpus
        if cpus is None:
            total = self.machine.spec.total_cpus
            cpus = tuple((self._next_auto_cpu + i) % total for i in range(spec.vcpus))
            self._next_auto_cpu = (self._next_auto_cpu + spec.vcpus) % total
        vcpus = [VCpu(i, spec.name, self.machine.cpu(c)) for i, c in enumerate(cpus)]
        vm = VirtualMachine(self, spec, vcpus)
        for v in vcpus:
            v.exec = _VcpuExec(self, vm, v)
        self.vms.append(vm)
        return vm

    def start(self) -> None:
        """Boot every VM: all vCPUs become runnable at t=now."""
        for vm in self.vms:
            if vm.kernel is None:
                raise HostError(f"VM {vm.name} has no kernel attached")
            for v in vm.vcpus:
                v.exec.start()

    # ---------------------------------------------------------- interrupts

    def send_ipi(self, vm: VirtualMachine, src: VCpu, dest_index: int, vector: Vector) -> None:
        """Deliver an inter-processor interrupt between two vCPUs of a VM."""
        if not 0 <= dest_index < len(vm.vcpus):
            raise HostError(f"VM {vm.name}: IPI to unknown vCPU {dest_index}")
        dest = vm.vcpus[dest_index]
        cross = not self.machine.same_socket(src.pcpu.index, dest.pcpu.index)
        dest.exec.deliver(vector, ExitTag.IPI, cross_socket=cross)

    def deliver_device_irq(self, vm: VirtualMachine, vcpu_index: int, vector: Vector) -> None:
        """Inject a device completion interrupt into a vCPU."""
        vm.vcpus[vcpu_index].exec.deliver(vector, ExitTag.IO)

    def complete_io_request(
        self,
        vm: VirtualMachine,
        vcpu_index: int,
        req: IoRequest,
        *,
        vector: Vector = Vector.BLOCK_IO,
    ) -> None:
        """Device completion path: vhost backend work, then injection.

        The backend work runs on a host service thread concurrently with
        whatever the vCPU is doing, so its cycles are accounted without
        occupying the vCPU's timeline; the interrupt reaches the guest
        after the backend latency.
        """
        vcpu = vm.vcpus[vcpu_index]
        backend_ns = self.machine.clock.cycles_to_ns(self.costs.host_io_backend)
        vcpu.pcpu.account(CycleDomain.HOST_IO, backend_ns)
        self.sim.schedule(backend_ns, self._deliver_io_completion, vm, vcpu_index, req, vector)

    #: Backwards-compatible name (block devices were wired first).
    complete_block_request = complete_io_request

    def _deliver_io_completion(
        self, vm: VirtualMachine, vcpu_index: int, req: IoRequest, vector: Vector
    ) -> None:
        vm.kernel.io_complete(vcpu_index, req)
        self.deliver_device_irq(vm, vcpu_index, vector)

    # ----------------------------------------------------------- host tick

    def ensure_host_tick(self, pcpu_index: int) -> None:
        """Keep the host tick running on a CPU that is executing guests.

        The host itself runs dynticks: its tick is live only while the
        CPU is busy (which is when it matters to paratick — §4.1 relies
        on host ticks interrupting *running* vCPUs).
        """
        if self._host_tick_events.get(pcpu_index) is not None:
            return
        period = self.machine.spec.host_tick_period_ns
        next_fire = (self.sim.now // period + 1) * period
        self._host_tick_events[pcpu_index] = self.sim.at(next_fire, self._host_tick, pcpu_index)

    def _host_tick(self, pcpu_index: int) -> None:
        self._host_tick_events[pcpu_index] = None
        vcpu = self.sched.running_on(pcpu_index)
        if vcpu is None or vcpu.state in (VcpuState.HALTED, VcpuState.OFF):
            return  # CPU idle: host is tickless, chain stops until next dispatch
        period = self.machine.spec.host_tick_period_ns
        self._host_tick_events[pcpu_index] = self.sim.schedule(period, self._host_tick, pcpu_index)
        vcpu.exec.host_tick_interrupt(preempt=self.sched.wants_preemption(pcpu_index))

    # -------------------------------------------------------- perturbations

    def suspend_vm(self, vm: VirtualMachine) -> None:
        """Freeze a VM: every vCPU stops, all its timers pause.

        Models ``virsh suspend`` / SIGSTOP on the VM process: host time
        keeps flowing (and is accounted in ``total_suspended_ns``) while
        the guest observes nothing until :meth:`resume_vm`.
        """
        if vm.suspended:
            raise HostError(f"VM {vm.name}: suspend while already suspended")
        now = self.sim.now
        vm.suspended = True
        vm.suspend_epoch_ns = now
        vm.suspend_count += 1
        if self.sim.trace.enabled:
            self.sim.trace.emit(now, vm.name, "vm_suspend", None)
        for v in vm.vcpus:
            v.exec.freeze()
        # Freezing forgets (not releases) the held pCPUs; hand any CPU
        # left idle to the next waiter of another VM so overcommitted
        # neighbours keep running through the span.
        for pcpu_index in sorted({v.pcpu.index for v in vm.vcpus}):
            if self.sched.running_on(pcpu_index) is None:
                nxt = self.sched.grant_next(pcpu_index)
                if nxt is not None:
                    nxt.exec.dispatch()

    def resume_vm(self, vm: VirtualMachine, *, clock_jump: bool = False) -> None:
        """Thaw a suspended VM.

        With ``clock_jump=False`` this is plain suspend/resume: the
        guest's clock never jumps, timers continue with the phase they
        had. With ``clock_jump=True`` it models save/restore: the guest
        clock jumps forward by the suspended span at the restore edge
        (``vm_restore``), paratick's last-tick state resynchronizes so
        the span is not replayed as a backlog of ticks, and the guest
        kernel re-aligns its tick machinery — every deadline re-armed
        afterwards must be at or after the restore instant.
        """
        if not vm.suspended:
            raise HostError(f"VM {vm.name}: resume but not suspended")
        now = self.sim.now
        span = now - vm.suspend_epoch_ns
        vm.suspended = False
        vm.total_suspended_ns += span
        if self.sim.trace.enabled:
            self.sim.trace.emit(now, vm.name, "vm_resume", span)
        if clock_jump:
            vm.clock_jump_ns += span
            if self.sim.trace.enabled:
                self.sim.trace.emit(now, vm.name, "vm_restore", span)
            for v in vm.vcpus:
                # kvmclock resync: the span is not a tick backlog.
                v.last_virtual_tick_ns = now
            if vm.kernel is not None:
                vm.kernel.on_clock_jump(span)
        for v in vm.vcpus:
            v.exec.unfreeze()

    def restore_vm(self, vm: VirtualMachine) -> None:
        """Resume with save/restore semantics (guest clock jump)."""
        self.resume_vm(vm, clock_jump=True)

    def drift_guest_clock(self, vm: VirtualMachine, delta_ns: int) -> None:
        """Step the guest's clock offset by ``delta_ns`` (signed).

        Models paravirtual-clock drift between host and guest: the
        guest's clock (``GuestKernel.now``) runs ``offset`` ahead of the
        host's, so deadline values it computes land ``offset`` earlier
        on the host timeline (translated in ``_apply_deadline``, clamped
        so a deadline never lands in the host's past). Deadlines already
        armed in hardware keep their old translation — like a real TSC
        write racing an offset update, the step applies from the next
        programming on.
        """
        vm.guest_clock_offset_ns += delta_ns
        if self.sim.trace.enabled:
            self.sim.trace.emit(self.sim.now, vm.name, "clock_drift", vm.guest_clock_offset_ns)

    def hotplug_vcpu(self, vm: VirtualMachine, *, pcpu: Optional[int] = None) -> VCpu:
        """Bring one additional vCPU online while the VM runs.

        The new vCPU takes the next index, is placed round-robin unless
        ``pcpu`` pins it, boots through the guest kernel's hotplug path
        and enters the run-state machine exactly like a boot-time vCPU
        (init -> exited).
        """
        if vm.suspended:
            raise HostError(f"VM {vm.name}: hotplug while suspended")
        index = len(vm.vcpus)
        if pcpu is None:
            total = self.machine.spec.total_cpus
            pcpu = self._next_auto_cpu
            self._next_auto_cpu = (self._next_auto_cpu + 1) % total
        v = VCpu(index, vm.name, self.machine.cpu(pcpu))
        v.exec = _VcpuExec(self, vm, v)
        vm.vcpus.append(v)
        vm.hotplug_count += 1
        if self.sim.trace.enabled:
            self.sim.trace.emit(self.sim.now, vm.name, "vcpu_hotplug", index)
        if vm.kernel is not None:
            vm.kernel.on_vcpu_hotplug(index)
        v.exec.start()
        return v

    def unplug_vcpu(self, vm: VirtualMachine, index: Optional[int] = None) -> None:
        """Tear down a previously hotplugged vCPU.

        Only the highest-index, beyond-boot vCPU may go (LIFO, so
        indices stay dense and boot vCPUs — which own workload tasks —
        are never removed).
        """
        if vm.suspended:
            raise HostError(f"VM {vm.name}: unplug while suspended")
        if index is None:
            index = len(vm.vcpus) - 1
        if index < vm.boot_vcpus or index != len(vm.vcpus) - 1:
            raise HostError(
                f"VM {vm.name}: cannot unplug vcpu{index} "
                f"(boot vCPUs 0..{vm.boot_vcpus - 1}, online {len(vm.vcpus)})"
            )
        if vm.kernel is not None and vm.kernel.sched.has_work(index):
            raise HostError(f"VM {vm.name}: vcpu{index} still has runnable tasks")
        v = vm.vcpus[index]
        vm.unplug_count += 1
        if self.sim.trace.enabled:
            self.sim.trace.emit(self.sim.now, vm.name, "vcpu_unplug", index)
        if self.sched.running_on(v.pcpu.index) is v:
            # Hand the CPU over before shutdown so waiters are not orphaned.
            nxt = self.sched.release(v)
            if nxt is not None:
                nxt.exec.dispatch()
        v.exec.shutdown()
        src = f"{vm.name}/vcpu{index}"
        prev = vm.retired_steal.get(src, (0, 0))
        vm.retired_steal[src] = (prev[0] + v.total_steal_ns, prev[1] + v.steal_episodes)
        vm.vcpus.pop()
        if vm.kernel is not None:
            vm.kernel.on_vcpu_unplug(index)

    # ------------------------------------------------------------- readouts

    def find_vm(self, name: str) -> VirtualMachine:
        for vm in self.vms:
            if vm.name == name:
                return vm
        raise HostError(f"no VM named {name!r}")

    def total_exits(self) -> int:
        return sum(vm.counters.total for vm in self.vms)


class _VcpuExec:
    """Per-vCPU execution state machine (the KVM vcpu_run loop)."""

    __slots__ = (
        "hv",
        "sim",
        "vm",
        "vcpu",
        "costs",
        "clock",
        "preempt_timer",
        "_cur_op",
        "_cur_start",
        "_cur_dur",
        "_cur_event",
        "_host_deadline_event",
        "_polling",
        "_poll_event",
        "_poll_start",
        "_vlapic",
        "_pending_sched_ns",
        "_frozen_from",
        "_frozen_hostdl",
        "_frozen_vlapic_left",
        "timerhw_state",
    )

    def __init__(self, hv: Hypervisor, vm: VirtualMachine, vcpu: VCpu):
        self.hv = hv
        self.sim = hv.sim
        self.vm = vm
        self.vcpu = vcpu
        self.costs = hv.costs
        self.clock = hv.machine.clock
        self.preempt_timer = PreemptionTimer(
            hv.sim, self._on_preempt_timer, name=f"{vm.name}/vcpu{vcpu.index}"
        )
        self._cur_op: Optional[gops.Compute] = None
        self._cur_start = 0
        self._cur_dur = 0
        self._cur_event = None
        self._host_deadline_event = None
        self._polling = False
        self._poll_event = None
        self._poll_start = 0
        #: KVM's periodic-mode vLAPIC emulation (created on first TMICT
        #: write); the hardware timer model supplies pause/resume for
        #: the VM-suspend path.
        self._vlapic: Optional[LapicTimer] = None
        #: Scheduler work (block swtch, wake of a contended vCPU) whose
        #: cost is deferred until it can occupy this vCPU's timeline.
        self._pending_sched_ns = 0
        #: State this vCPU was frozen from (VM suspend), None when live.
        self._frozen_from: Optional[VcpuState] = None
        #: Whether the host stand-in deadline timer was armed at freeze.
        self._frozen_hostdl = False
        #: Remaining ns of the paused vLAPIC period at freeze, if any.
        self._frozen_vlapic_left: Optional[int] = None
        #: Backend-owned host-side timer register state (lazily created
        #: by the arch's TimerHardware.decode; None on x86).
        self.timerhw_state = None

    def _trace(self, kind: str, detail=None, *, suffix: str = "") -> None:
        """Emit a structured event for this vCPU (callers building tuple
        details should pre-check ``sim.trace.enabled`` themselves)."""
        trace = self.sim.trace
        if trace.enabled:
            trace.emit(
                self.sim.now, f"{self.vm.name}/vcpu{self.vcpu.index}{suffix}", kind, detail
            )

    # ------------------------------------------------------------ lifecycle

    def start(self) -> None:
        """Make the vCPU runnable for the first time."""
        if self.vcpu.state is not VcpuState.INIT:
            raise HostError(f"{self.vcpu!r} started twice")
        self.vcpu.state = VcpuState.EXITED
        if self.hv.sched.acquire(self.vcpu):
            self._enter_guest()
        # else: queued READY; dispatched when the CPU frees up.

    def shutdown(self) -> None:
        """Stop driving this vCPU."""
        vcpu = self.vcpu
        now = self.sim.now
        # Close any open READY/HALTED interval: the trace observers
        # close theirs on the ready->off / halted->off transition below,
        # and the runtime counters must agree exactly (unplug teardown).
        if vcpu.state is VcpuState.READY:
            vcpu.total_steal_ns += now - vcpu.ready_since_ns
            vcpu.steal_episodes += 1
        elif vcpu.state is VcpuState.HALTED:
            vcpu.total_halted_ns += now - vcpu.halted_since_ns
            vcpu.halted_since_ns = now
        self._cancel_cur()
        self._cancel_host_deadline()
        if self._poll_event is not None:
            self.sim.cancel(self._poll_event)
            self._poll_event = None
            self._polling = False
        if self._vlapic is not None:
            self._vlapic.disarm()
        self.preempt_timer.stop()
        self.hv.sched.forget(self.vcpu)
        self.vcpu.state = VcpuState.OFF

    # ------------------------------------------------------ suspend support

    def freeze(self) -> None:
        """VM-wide suspend: quiesce this vCPU and park it (SUSPENDED).

        The vCPU's pCPU claim is *forgotten* (not released — the owning
        :meth:`Hypervisor.suspend_vm` re-grants idle CPUs afterwards),
        every timer standing in for the guest pauses, and in-flight
        exit/entry continuations are parked by the suspend guards when
        they land. READY waits and halt spans in progress are closed at
        the freeze edge: the suspended span is host time, never guest
        steal or idle time.
        """
        vcpu = self.vcpu
        st = vcpu.state
        if st in (VcpuState.OFF, VcpuState.INIT, VcpuState.SUSPENDED):
            return
        now = self.sim.now
        self._frozen_from = st
        if self._vlapic is not None:
            self._frozen_vlapic_left = self._vlapic.pause()
        self._frozen_hostdl = self._host_deadline_event is not None
        self._cancel_host_deadline()
        if self._polling:
            self._polling = False
            self.sim.cancel(self._poll_event)
            self._poll_event = None
            vcpu.pcpu.account(CycleDomain.HALT_POLL, now - self._poll_start)
        if st is VcpuState.GUEST:
            self._cancel_cur()
            self.preempt_timer.stop()
        elif st is VcpuState.HALTED:
            # Close the halt accounting at the suspend edge; the episode
            # count stays with the eventual wake.
            vcpu.total_halted_ns += now - vcpu.halted_since_ns
            vcpu.halted_since_ns = now
        elif st is VcpuState.READY:
            # The state machine emits ready -> suspended, which closes
            # this READY interval in every trace-side observer — close
            # the runtime steal counters identically so they reconcile.
            vcpu.total_steal_ns += now - vcpu.ready_since_ns
            vcpu.steal_episodes += 1
        # EXITED: a continuation (entry, exit work, halt) is in flight;
        # the suspend guards park it when it fires inside the span.
        self.hv.sched.forget(vcpu)
        vcpu.state = VcpuState.SUSPENDED

    def unfreeze(self) -> None:
        """Resume-side thaw: restore the state the vCPU was frozen from.

        Timers re-arm monotonically — every expiry that passed during
        the span is clamped to the resume instant, so stale deadlines
        fire immediately *after* resume instead of in the guest's past.
        """
        vcpu = self.vcpu
        if vcpu.state is not VcpuState.SUSPENDED:
            return
        now = self.sim.now
        frozen_from = self._frozen_from
        self._frozen_from = None
        rearm_hostdl = self._frozen_hostdl
        self._frozen_hostdl = False
        if self._frozen_vlapic_left is not None:
            self._vlapic.resume(self._frozen_vlapic_left)
            self._frozen_vlapic_left = None
        if frozen_from is VcpuState.HALTED:
            vcpu.state = VcpuState.HALTED
            vcpu.halted_since_ns = now
            if vcpu.pending_irqs:
                self._wake()
                return
            if rearm_hostdl:
                self._arm_host_deadline()
            return
        # GUEST / EXITED / READY all thaw runnable.
        vcpu.state = VcpuState.EXITED
        if self.hv.sched.acquire(vcpu):
            self._enter_guest()
        elif rearm_hostdl:
            self._arm_host_deadline()

    # ------------------------------------------------------------- VM entry

    def _enter_guest(self) -> None:
        """Begin the VM-entry sequence (we hold the physical CPU)."""
        vcpu = self.vcpu
        if vcpu.state in (VcpuState.SUSPENDED, VcpuState.OFF):
            return  # parked by a VM suspend (or torn down) mid-transition
        self._cancel_host_deadline()
        self.hv.ensure_host_tick(vcpu.pcpu.index)
        # Paratick host hook (Fig. 2): runs on every VM entry.
        if self.vm.paratick_enabled:
            now = self.sim.now
            if vcpu.has_pending_timer_irq and self.hv.features.paratick_last_tick_heuristic:
                # Heuristic of §5.1: the pending guest timer interrupt
                # will act as a tick.
                vcpu.last_virtual_tick_ns = now
            elif now - vcpu.last_virtual_tick_ns >= self.vm.paratick_period_ns:
                if vcpu.post_irq(Vector.PARATICK_VIRTUAL_TICK):
                    self.vm.virtual_ticks_injected += 1
                vcpu.last_virtual_tick_ns = now
        vectors = vcpu.drain_irqs()
        if vectors and self.sim.trace.enabled:
            self.sim.trace.emit(
                self.sim.now, f"{self.vm.name}/vcpu{vcpu.index}", "inject",
                tuple(int(v) for v in vectors),
            )
        c = self.costs
        entry_cycles = c.vmentry_hw + c.inject_irq * len(vectors)
        entry_ns = self.clock.cycles_to_ns(entry_cycles)
        pollution_ns = self.clock.cycles_to_ns(c.pollution)
        self.sim.schedule(entry_ns + pollution_ns, self._entered, vectors, entry_ns, pollution_ns)

    def _entered(self, vectors: tuple, entry_ns: int, pollution_ns: int) -> None:
        vcpu = self.vcpu
        vcpu.pcpu.account(CycleDomain.VMX_TRANSITION, entry_ns)
        vcpu.pcpu.account(CycleDomain.POLLUTION, pollution_ns)
        if vcpu.state in (VcpuState.SUSPENDED, VcpuState.OFF):
            # Frozen mid-entry: the drained vectors go back to pending so
            # the post-resume entry injects them again.
            for v in vectors:
                vcpu.post_irq(v)
            return
        vcpu.state = VcpuState.GUEST
        deadline = vcpu.guest_deadline_ns
        if (
            self.hv.features.paratick_rate_adapt
            and self.vm.paratick_enabled
            and self.vm.paratick_period_ns > 0
        ):
            # §4.1 rate adaptation: guarantee an injection opportunity
            # once per guest tick period even if the host tick is slower.
            backstop = vcpu.last_virtual_tick_ns + self.vm.paratick_period_ns
            if deadline is None or backstop < deadline:
                deadline = backstop
        self.preempt_timer.set_deadline(deadline)
        self.preempt_timer.start()
        if vectors:
            self.vm.kernel.on_interrupts(vcpu.index, vectors)
        self._next_op()

    # ----------------------------------------------------------- op stream

    def _next_op(self) -> None:
        kernel = self.vm.kernel
        vcpu = self.vcpu
        for _ in range(_MAX_OP_CHAIN):
            op = kernel.next_op(vcpu.index)
            if op is None:
                self.shutdown()
                return
            if isinstance(op, gops.Compute):
                if op.cycles == 0:
                    if op.on_done is not None:
                        op.on_done()
                    continue
                self._cur_op = op
                self._cur_start = self.sim.now
                self._cur_dur = self.clock.cycles_to_ns(op.cycles)
                self._cur_event = self.sim.schedule(self._cur_dur, self._compute_done)
                return
            if isinstance(op, gops.Pause) and not self.hv.features.ple:
                # Without pause-loop exiting, spinning is just compute.
                self._cur_op = gops.Compute(op.cycles, CycleDomain.GUEST_KERNEL)
                self._cur_start = self.sim.now
                self._cur_dur = self.clock.cycles_to_ns(op.cycles)
                self._cur_event = self.sim.schedule(self._cur_dur, self._compute_done)
                return
            self._sync_exit(op)
            return
        raise HostError(f"{vcpu!r}: guest op stream made no progress")

    def _compute_done(self) -> None:
        op = self._cur_op
        self.vcpu.pcpu.account(op.domain, self.sim.now - self._cur_start)
        self._cur_op = self._cur_event = None
        if op.on_done is not None:
            op.on_done()
        self._next_op()

    def _cancel_cur(self) -> None:
        """Truncate an in-flight compute: account elapsed, re-queue rest."""
        if self._cur_op is None:
            return
        op = self._cur_op
        elapsed = self.sim.now - self._cur_start
        if elapsed > 0:
            self.vcpu.pcpu.account(op.domain, elapsed)
        self.sim.cancel(self._cur_event)
        remaining = self.clock.ns_to_cycles(self._cur_dur - elapsed)
        if remaining > 0:
            self.vm.kernel.requeue_front(
                self.vcpu.index, gops.Compute(remaining, op.domain, op.on_done)
            )
        elif op.on_done is not None:
            # The interrupt landed exactly at completion; finish the op.
            op.on_done()
        self._cur_op = self._cur_event = None

    # ------------------------------------------------------------- VM exits

    def _sync_exit(self, op: gops.GuestOp) -> None:
        """Take a synchronous exit for an intercepted instruction.

        Timer/interrupt-controller register writes are decoded by the
        architecture's :class:`repro.hw.timerhw.TimerHardware`; the
        arch-neutral ops (HLT, IO, hypercall, ...) are handled here.
        """
        c = self.costs
        decoded = self.hv.timerhw.decode(self, op)
        if decoded is not None:
            self._begin_exit(*decoded)
        elif isinstance(op, gops.Hlt):
            self._begin_exit(ExitReason.HLT, ExitTag.IDLE, c.handler_hlt, None, then=self._halt)
        elif isinstance(op, gops.IoKick):
            self._begin_exit(
                ExitReason.IO_INSTRUCTION,
                ExitTag.IO,
                c.handler_io_kick,
                lambda: self._submit_io(op),
            )
        elif isinstance(op, gops.Hypercall):
            self._begin_exit(
                ExitReason.HYPERCALL,
                ExitTag.HYPERCALL,
                c.handler_hypercall,
                lambda: self.vm.handle_hypercall(self.vcpu, op.nr, op.arg),
            )
        elif isinstance(op, gops.Pause):
            self._begin_exit(ExitReason.PAUSE, ExitTag.OTHER, c.handler_pause, None)
        elif isinstance(op, gops.Fault):
            self._begin_exit(ExitReason.EPT_VIOLATION, ExitTag.OTHER, c.handler_ept, None)
        else:
            raise HostError(f"unknown guest op {op!r}")

    def _begin_exit(self, reason, tag, handler_cycles, effect, then=None) -> None:
        """Common exit path: stop the clock sources, cost it, continue.

        ``effect`` runs when the handler completes (hypervisor-side state
        change); ``then`` overrides the default continuation of
        re-entering the guest.
        """
        vcpu = self.vcpu
        vcpu.state = VcpuState.EXITED
        self.preempt_timer.stop()
        self.vm.counters.record(vcpu.index, reason, tag)
        if self.sim.trace.enabled:
            self.sim.trace.emit(
                self.sim.now, f"{self.vm.name}/vcpu{vcpu.index}", "vmexit",
                (reason.value, tag.value),
            )
        c = self.costs
        exit_hw_ns = self.clock.cycles_to_ns(c.vmexit_hw)
        handler_ns = self.clock.cycles_to_ns(handler_cycles)
        self.sim.schedule(
            exit_hw_ns + handler_ns, self._exit_work_done, exit_hw_ns, handler_ns, effect, then
        )

    def _exit_work_done(self, exit_hw_ns, handler_ns, effect, then) -> None:
        pcpu = self.vcpu.pcpu
        pcpu.account(CycleDomain.VMX_TRANSITION, exit_hw_ns)
        pcpu.account(CycleDomain.HOST_HANDLER, handler_ns)
        if effect is not None:
            effect()
        if self.vcpu.state in (VcpuState.OFF, VcpuState.SUSPENDED):
            # Shut down by the effect, or frozen by a VM suspend while
            # the handler ran: the hypervisor-side effect still retired,
            # but the continuation parks until resume (or forever).
            return
        if then is not None:
            then()
        else:
            self._enter_guest()

    # -------------------------------------------------------- exit effects

    def _apply_deadline(self, tsc_value: int) -> None:
        """KVM's TSC_DEADLINE write handler (preemption-timer optimization)."""
        if tsc_value == 0:
            self.vcpu.guest_deadline_ns = None
            self.preempt_timer.clear()
            self._trace("deadline_clear")
        else:
            deadline = self.hv.tsc.deadline_to_ns(tsc_value)
            offset = self.vm.guest_clock_offset_ns
            if offset:
                # Clock-drift perturbation: the guest computed this
                # deadline on its own (drifted) clock; on the host
                # timeline it lands ``offset`` earlier, clamped so it
                # never lands in the past.
                deadline = max(deadline - offset, self.sim.now)
            self.vcpu.guest_deadline_ns = deadline
            self._trace("deadline_set", deadline)

    def _start_virtual_periodic(self, period_ns: int) -> None:
        """Guest armed its virtual LAPIC in periodic mode.

        KVM emulates the repeating timer host-side through the LAPIC
        hardware model (one timer per vCPU, source ``.../vlapic``);
        expiry delivers a tick, waking the vCPU if halted.
        """
        if period_ns <= 0:
            raise HostError(f"{self.vcpu!r}: invalid periodic LAPIC period {period_ns}")
        if self._vlapic is None:
            self._vlapic = LapicTimer(
                self.sim,
                self.hv.tsc,
                self._vlapic_deliver,
                name=f"{self.vm.name}/vcpu{self.vcpu.index}/vlapic",
            )
        self._vlapic.arm_periodic_ns(period_ns)
        if self.vm.suspended:
            # The TMICT write retired inside a suspended span: the vLAPIC
            # clock is gated, so park the fresh period until resume.
            self._frozen_vlapic_left = self._vlapic.pause()

    def _vlapic_deliver(self, vector: Vector) -> None:
        self.deliver(vector, ExitTag.TIMER_GUEST_TICK)

    def _submit_io(self, op: gops.IoKick) -> None:
        op.request.cookie = (self.vcpu.index, op.request.cookie)
        op.device.submit(op.request)

    # ------------------------------------------------------------- halting

    def _halt(self) -> None:
        """HLT continuation: poll (optionally), then block."""
        if self.vcpu.state in (VcpuState.SUSPENDED, VcpuState.OFF):
            return  # frozen/torn down while the HLT exit was processing
        if self.vcpu.pending_irqs:
            # An interrupt arrived during exit processing: do not block.
            self._enter_guest()
            return
        if self.hv.features.halt_poll_ns > 0:
            self._polling = True
            self._poll_start = self.sim.now
            self._poll_event = self.sim.schedule(self.hv.features.halt_poll_ns, self._poll_timeout)
            return
        self._block()

    def _poll_timeout(self) -> None:
        self._polling = False
        self._poll_event = None
        self.vcpu.pcpu.account(CycleDomain.HALT_POLL, self.sim.now - self._poll_start)
        self._block()

    def _block(self) -> None:
        vcpu = self.vcpu
        block_ns = self.clock.cycles_to_ns(self.costs.block_vcpu)
        vcpu.state = VcpuState.HALTED
        vcpu.halted_since_ns = self.sim.now
        self._arm_host_deadline()
        nxt = self.hv.sched.release(vcpu)
        if nxt is not None:
            # The block-side swtch work delays whoever takes the CPU;
            # booking it here in zero sim-time would overbook the shared
            # timeline (the successor starts its own costs at this same
            # instant).
            nxt.exec.dispatch(extra_ns=block_ns)
        else:
            # CPU going idle: pay the swtch cost when this vCPU next
            # occupies the timeline (its wake).
            self._pending_sched_ns += block_ns

    def _arm_host_deadline(self) -> None:
        """While not in guest mode, a host timer stands in for the
        preemption timer so guest-programmed deadlines still fire."""
        deadline = self.vcpu.guest_deadline_ns
        if deadline is None:
            return
        when = max(deadline, self.sim.now)
        self._host_deadline_event = self.sim.at(when, self._host_deadline_fired)
        self._trace("hostdl_arm", when)

    def _cancel_host_deadline(self) -> None:
        if self._host_deadline_event is not None:
            self.sim.cancel(self._host_deadline_event)
            self._host_deadline_event = None
            self._trace("hostdl_cancel")

    def _host_deadline_fired(self) -> None:
        self._host_deadline_event = None
        deadline = self.vcpu.guest_deadline_ns
        self.vcpu.guest_deadline_ns = None
        self.preempt_timer.clear()
        if self.sim.trace.enabled:
            self._trace("hostdl_fire")
            self._trace("deadline_fire", (deadline, "host"))
        self.deliver(Vector.LOCAL_TIMER, ExitTag.TIMER_GUEST_TICK)

    def dispatch(self, *, extra_ns: int = 0) -> None:
        """The host scheduler gave us the CPU (overcommit path).

        ``extra_ns`` carries the outgoing vCPU's block-side swtch cost;
        any deferred wake cost of this vCPU is also paid here — both
        now occupy the timeline, serialized before guest entry.

        The READY wait that ends here is this vCPU's *steal time*
        (runnable but not running); it is accounted on the vCPU the way
        KVM feeds the guest's steal-time MSR.
        """
        vcpu = self.vcpu
        if vcpu.state is not VcpuState.READY:
            raise HostError(f"dispatch of {vcpu!r} in state {vcpu.state}")
        stolen_ns = self.sim.now - vcpu.ready_since_ns
        vcpu.total_steal_ns += stolen_ns
        vcpu.steal_episodes += 1
        if self.sim.trace.enabled:
            self._trace("sched_dispatch", (vcpu.pcpu.index, stolen_ns))
        vcpu.state = VcpuState.EXITED
        ctx_ns = self.clock.cycles_to_ns(self.costs.ctx_switch)
        ctx_ns += extra_ns + self._pending_sched_ns
        self._pending_sched_ns = 0
        self.vcpu.pcpu.account(CycleDomain.HOST_SCHED, ctx_ns)
        self.sim.schedule(ctx_ns, self._enter_guest)

    # ----------------------------------------------------- async interrupts

    def deliver(self, vector: Vector, tag: ExitTag, *, cross_socket: bool = False) -> None:
        """An interrupt for this vCPU arrived (device, IPI or stand-in timer)."""
        vcpu = self.vcpu
        state = vcpu.state
        if state is VcpuState.OFF:
            return
        vcpu.post_irq(vector)
        if state is VcpuState.GUEST:
            # Forces an external-interrupt exit; injected on re-entry.
            self._cancel_cur()
            self._begin_exit(
                ExitReason.EXTERNAL_INTERRUPT, tag, self.costs.handler_external_interrupt, None
            )
        elif state is VcpuState.HALTED:
            self._wake(cross_socket=cross_socket)
        elif state is VcpuState.EXITED and self._polling:
            self._finish_poll_hit()
        # EXITED (not polling) / READY / INIT / SUSPENDED: stays pending,
        # injected at the next VM entry (for a suspended vCPU that is the
        # post-resume entry) — no additional exit, like a posted IRR bit.

    def _finish_poll_hit(self) -> None:
        """Halt polling succeeded: skip the block/wake round trip."""
        self._polling = False
        self.sim.cancel(self._poll_event)
        self._poll_event = None
        self.vcpu.pcpu.account(CycleDomain.HALT_POLL, self.sim.now - self._poll_start)
        self._enter_guest()

    def _wake(self, *, cross_socket: bool = False) -> None:
        vcpu = self.vcpu
        self._cancel_host_deadline()
        halted = self.sim.now - vcpu.halted_since_ns
        vcpu.total_halted_ns += halted
        vcpu.halt_episodes += 1
        vcpu.state = VcpuState.EXITED
        wake_cycles = self.costs.wake_vcpu
        if cross_socket:
            wake_cycles = int(wake_cycles * self.hv.machine.spec.cross_socket_penalty)
        wake_ns = self.clock.cycles_to_ns(wake_cycles)
        cstate = vcpu.requested_cstate
        if cstate is not None:
            # cpuidle model: the deeper the state, the longer the exit.
            name = cstate.name
            vcpu.cstate_residency_ns[name] = vcpu.cstate_residency_ns.get(name, 0) + halted
            wake_ns += cstate.exit_latency_ns
            vcpu.requested_cstate = None
        wake_ns += self._pending_sched_ns
        self._pending_sched_ns = 0
        if self.hv.sched.acquire(vcpu):
            vcpu.pcpu.account(CycleDomain.HOST_SCHED, wake_ns)
            self.sim.schedule(wake_ns, self._enter_guest)
        else:
            # READY behind another vCPU: the pCPU is busy right now, so
            # the wake/C-state-exit work is paid at dispatch, when it
            # actually occupies the timeline.
            self._pending_sched_ns = wake_ns

    # ------------------------------------------------- timer & host tick

    def _on_preempt_timer(self) -> None:
        """VMX preemption timer expired in guest mode.

        Either the guest's own deadline passed (§3 — the 'less costly'
        exit, inject LOCAL_TIMER) or the §4.1 rate-adaptation backstop
        fired before any guest deadline — then the exit exists purely so
        the re-entry hook can inject a virtual tick.
        """
        vcpu = self.vcpu
        if vcpu.state is not VcpuState.GUEST:
            raise HostError("preemption timer fired outside guest mode")
        self._cancel_cur()
        reason, cost = self.hv.timerhw.deadline_fire_exit(self.costs)
        gd = vcpu.guest_deadline_ns
        if gd is not None and self.sim.now >= gd:
            # The guest's own deadline passed: consume it, inject its
            # timer interrupt on re-entry.
            vcpu.guest_deadline_ns = None
            if self.sim.trace.enabled:
                self._trace("deadline_fire", (gd, "ptimer"))
            vcpu.post_irq(Vector.LOCAL_TIMER)
            self._begin_exit(reason, ExitTag.TIMER_GUEST_TICK, cost, None)
            return
        # Rate-adaptation backstop: no guest deadline was due; the exit
        # exists purely so the entry hook can inject a virtual tick.
        self._begin_exit(reason, ExitTag.TIMER_HOST_TICK, cost, None)

    def host_tick_interrupt(self, *, preempt: bool) -> None:
        """The host scheduler tick fired on our physical CPU."""
        vcpu = self.vcpu
        if vcpu.state is VcpuState.GUEST:
            self._cancel_cur()
            extra = self.costs.host_tick_handler
            then = self._preempt_requeue if preempt else None
            self._begin_exit(
                ExitReason.EXTERNAL_INTERRUPT,
                ExitTag.TIMER_HOST_TICK,
                self.costs.handler_external_interrupt + extra,
                None,
                then=then,
            )
        else:
            # Tick arrived while already in root mode: host-side work only,
            # no VM exit. Runs concurrently with the in-flight exit
            # processing (approximation: does not stretch the sequence).
            self.vcpu.pcpu.account(
                CycleDomain.HOST_TICK, self.clock.cycles_to_ns(self.costs.host_tick_handler)
            )

    def _preempt_requeue(self) -> None:
        """Host tick boundary with waiters: rotate this CPU (overcommit)."""
        vcpu = self.vcpu
        nxt = self.hv.sched.release(vcpu)
        self.hv.sched.requeue(vcpu)
        self._trace("sched_preempt", vcpu.pcpu.index)
        self._arm_host_deadline()
        if nxt is not None:
            nxt.exec.dispatch()
