"""vCPU state.

Matches the fields paratick adds to KVM's ``kvm_vcpu`` struct (§5.1):
"a field was added to the struct KVM uses to represent a vCPU internally
(kvm_vcpu) representing the time of the last virtual tick injection" —
that is :attr:`VCpu.last_virtual_tick_ns` here.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.hw.cpu import PhysicalCPU
from repro.hw.interrupts import Vector


class VcpuState(enum.Enum):
    """Execution state of a vCPU."""

    #: Created, not yet started.
    INIT = "init"
    #: Executing guest code on its physical CPU.
    GUEST = "guest"
    #: In the hypervisor, processing a VM exit / performing VM entry.
    EXITED = "exited"
    #: Blocked after HLT, waiting for an interrupt.
    HALTED = "halted"
    #: Runnable but waiting for a physical CPU (overcommit only).
    READY = "ready"
    #: Frozen by a VM-wide suspend; thawed by resume/restore.
    SUSPENDED = "suspended"
    #: Shut down.
    OFF = "off"


class VCpu:
    """One virtual CPU: identity, pending interrupts, timer bookkeeping."""

    __slots__ = (
        "index",
        "vm_name",
        "pcpu",
        "_state",
        "pending_irqs",
        "guest_deadline_ns",
        "last_virtual_tick_ns",
        "halted_since_ns",
        "total_halted_ns",
        "halt_episodes",
        "ready_since_ns",
        "total_steal_ns",
        "steal_episodes",
        "requested_cstate",
        "cstate_residency_ns",
        "exec",
    )

    def __init__(self, index: int, vm_name: str, pcpu: PhysicalCPU):
        self.index = index
        self.vm_name = vm_name
        self.pcpu = pcpu
        self._state = VcpuState.INIT
        #: Interrupts awaiting injection, in arrival order (no duplicates).
        self.pending_irqs: list[Vector] = []
        #: Absolute expiry of the guest-programmed deadline timer, if armed.
        self.guest_deadline_ns: Optional[int] = None
        #: Paratick host state: time of the last virtual tick injection.
        self.last_virtual_tick_ns: int = 0
        #: When the current HLT block began (for idle accounting).
        self.halted_since_ns: int = 0
        #: Cumulative time spent blocked in HLT (the paper's T_idle sums).
        self.total_halted_ns: int = 0
        #: Number of completed halt episodes.
        self.halt_episodes: int = 0
        #: When the current READY wait began (overcommit only).
        self.ready_since_ns: int = 0
        #: Cumulative time spent runnable-but-not-running — the
        #: guest-visible *steal time* of arXiv:1810.01139, accounted by
        #: the host at dispatch (mirrors KVM's steal-time MSR).
        self.total_steal_ns: int = 0
        #: Number of completed READY waits (dispatches after a queue wait).
        self.steal_episodes: int = 0
        #: C-state the guest requested for the current/next halt
        #: (MWAIT hint; None = plain HLT / cpuidle model disabled).
        self.requested_cstate = None
        #: Per-C-state residency (state name -> ns), cpuidle model only.
        self.cstate_residency_ns: dict[str, int] = {}
        #: Back-reference to the executor driving this vCPU (set by KVM).
        self.exec = None

    @property
    def state(self) -> VcpuState:
        """Execution state; every transition is a structured trace event."""
        return self._state

    @state.setter
    def state(self, new: VcpuState) -> None:
        old = self._state
        self._state = new
        # All writers (the executor in repro.host.kvm and the host
        # scheduler) funnel through here, so the trace sees the complete
        # run-state machine — that is what repro.analysis checks against.
        trace = self.pcpu._sim.trace
        if trace.enabled and old is not new:
            trace.emit(
                self.pcpu._sim.now,
                f"{self.vm_name}/vcpu{self.index}",
                "vcpu_state",
                (old.value, new.value),
            )

    def post_irq(self, vector: Vector) -> bool:
        """Queue ``vector`` for injection; returns False if already pending.

        Interrupt coalescing mirrors the LAPIC IRR: a vector can be
        pending at most once.
        """
        if vector in self.pending_irqs:
            return False
        self.pending_irqs.append(vector)
        return True

    def drain_irqs(self) -> tuple[Vector, ...]:
        """Remove and return all pending interrupts, in arrival order."""
        out = tuple(self.pending_irqs)
        self.pending_irqs.clear()
        return out

    def mean_idle_period_ns(self) -> float:
        """Average halt-episode length — §3.2's T_idle, measured."""
        return self.total_halted_ns / self.halt_episodes if self.halt_episodes else 0.0

    @property
    def has_pending_timer_irq(self) -> bool:
        """True if a local-timer interrupt awaits injection (§5.1 check)."""
        return Vector.LOCAL_TIMER in self.pending_irqs

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<vCPU {self.vm_name}/{self.index} {self.state.value} on pCPU{self.pcpu.index}>"
