"""The calibrated cost model.

Every cost is in CPU **cycles** at the machine's nominal clock. Two rules
keep the reproduction honest (DESIGN.md §5):

* exit *counts* are never tuned — they follow mechanically from the
  tick-sched state machines and the workload;
* costs are calibrated once, against the paper's aggregate percentages
  (Tables 2–4), and then shared by every experiment.

Sources for the defaults: published VMX world-switch latencies for
Skylake-class parts (~1–2k cycles each way), KVM handler path lengths
(fast-path MSR write ~1.5–3k cycles, interrupt acknowledgement ~2–4k),
scheduling block/wake (~5–10k), and the well-documented *indirect* cost
of an exit — cache/TLB/branch-predictor pollution the guest repays after
resuming, commonly estimated at one to a few tens of thousands of cycles.
The indirect term (``pollution``) dominates, exactly as the literature
(and the paper's own throughput numbers) implies.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError
from repro.host.exitreasons import ExitReason


@dataclass(frozen=True)
class CostModel:
    """All simulator cost constants, in cycles."""

    # --- VMX world switch -------------------------------------------------
    #: Hardware cost of a VM exit (guest -> root mode).
    vmexit_hw: int = 1_300
    #: Hardware cost of a VM entry (root -> guest mode).
    vmentry_hw: int = 1_000
    #: Indirect cost repaid by the guest after each exit/entry round trip
    #: (cache, TLB and branch-predictor refill). The paper's companion
    #: study [32] measures ~15% of CPU time going to tick-management
    #: exits at a few thousand idle transitions per second per vCPU,
    #: which implies an effective all-in cost of ~20us per exit;
    #: 55k cycles (~25us at 2.2 GHz) reproduces that regime and sits at
    #: the upper end of published direct+indirect exit-cost estimates.
    pollution: int = 55_000

    # --- KVM exit handlers (per reason) -----------------------------------
    handler_msr_tsc_deadline: int = 1_800
    handler_msr_icr: int = 2_800
    handler_msr_eoi: int = 1_100
    handler_external_interrupt: int = 2_400
    handler_preemption_timer: int = 1_500
    handler_hlt: int = 2_000
    handler_io_kick: int = 5_000
    handler_hypercall: int = 1_200
    handler_pause: int = 1_000
    handler_ept: int = 7_000

    # --- KVM/arm64 exit handlers --------------------------------------------
    #: Trapped CNTV_CTL/CNTV_CVAL sysreg write (kvm_handle_sys_reg ->
    #: the vtimer emulation). Trap decode on arm64 is cheaper than the
    #: full x86 MSR path (arXiv 2206.00258's per-instruction timings).
    handler_sysreg_cntv: int = 950
    #: Trapped ICC_EOIR1 write on a pre-GICv4 host (no HW EOI bypass).
    handler_sysreg_eoi: int = 800
    #: Trapped ICC_SGI1R write (software-generated interrupt = IPI).
    handler_sysreg_sgi: int = 2_200
    #: Host-side handler for the guest's virtual generic timer firing in
    #: guest mode (vtimer IRQ taken at EL2, kvm_arch_timer_handler).
    handler_vtimer_irq: int = 1_500

    # --- Host scheduling / virtual APIC ------------------------------------
    #: Inject one interrupt into the guest at VM entry.
    inject_irq: int = 700
    #: Block a halted vCPU (schedule out, switch to idle/other).
    block_vcpu: int = 5_000
    #: Wake a blocked vCPU (schedule in).
    wake_vcpu: int = 7_000
    #: Host context switch between two runnable vCPUs (overcommit).
    ctx_switch: int = 4_000
    #: Host scheduler-tick handler.
    host_tick_handler: int = 3_000
    #: Host-side I/O backend work per request (virtio/vhost service).
    host_io_backend: int = 9_000

    # --- Guest kernel paths -------------------------------------------------
    #: Late-boot initialization work before the tick mechanism is
    #: installed (also de-phases guest timers from the host tick grid,
    #: as any real boot does).
    guest_boot_init: int = 1_700_000
    #: Scheduler-tick handler body (accounting, sched, wheel check).
    guest_tick_work: int = 4_000
    #: IRQ entry/exit glue around any handler.
    guest_irq_glue: int = 1_200
    #: Guest scheduler task switch.
    guest_sched_switch: int = 2_500
    #: Idle-entry bookkeeping (tick-mode decision logic).
    guest_idle_entry: int = 800
    #: Idle-exit bookkeeping.
    guest_idle_exit: int = 600
    #: Syscall entry/exit overhead.
    guest_syscall: int = 900
    #: Futex wait path (queue + block).
    guest_futex_wait: int = 1_800
    #: Futex wake path (dequeue + wake + maybe IPI setup).
    guest_futex_wake: int = 2_000
    #: Guest block-I/O submission path (bio + virtio queue).
    guest_io_submit: int = 12_000
    #: Guest block-I/O completion path (softirq + copy bookkeeping).
    guest_io_complete: int = 8_000
    #: Per-4KiB-page cost of moving I/O data through the guest.
    guest_io_per_page: int = 1_400
    #: Programming/cancelling a timer inside the guest (hrtimer + clockevents
    #: code around the actual MSR write).
    guest_timer_program: int = 500
    #: Enqueue/dequeue an hrtimer without touching hardware.
    guest_hrtimer_soft: int = 300
    #: Run one expired soft timer / RCU callback.
    guest_softirq_cb: int = 900

    def __post_init__(self) -> None:
        for name, value in self.__dict__.items():
            if isinstance(value, tuple):  # guard against the `1,` typo class
                raise ConfigError(f"cost {name} is a tuple; did you add a stray comma?")
            if value < 0:
                raise ConfigError(f"cost {name} must be >= 0, got {value}")

    # ---------------------------------------------------------------- lookup

    def handler_cost(self, reason: ExitReason, *, msr_is_icr: bool = False) -> int:
        """KVM software handler cost for an exit of ``reason``."""
        if reason is ExitReason.MSR_WRITE:
            return self.handler_msr_icr if msr_is_icr else self.handler_msr_tsc_deadline
        return {
            ExitReason.EXTERNAL_INTERRUPT: self.handler_external_interrupt,
            ExitReason.PREEMPTION_TIMER: self.handler_preemption_timer,
            ExitReason.HLT: self.handler_hlt,
            ExitReason.IO_INSTRUCTION: self.handler_io_kick,
            ExitReason.HYPERCALL: self.handler_hypercall,
            ExitReason.PAUSE: self.handler_pause,
            ExitReason.EPT_VIOLATION: self.handler_ept,
            ExitReason.SYSREG_TRAP: self.handler_sysreg_cntv,
            ExitReason.VTIMER_IRQ: self.handler_vtimer_irq,
        }[reason]

    def with_overrides(self, **kw: int) -> "CostModel":
        """A copy with some costs replaced (used by the ablation benches)."""
        return replace(self, **kw)


#: The calibrated default used by all experiments.
DEFAULT_COSTS = CostModel()
