"""The simulated hypervisor (KVM-like).

Owns vCPUs and their per-vCPU execution state machines, intercepts the
timer-path instructions (``TSC_DEADLINE`` writes, HLT, I/O kicks,
hypercalls), takes host-tick external-interrupt exits, applies the
KVM preemption-timer optimization, injects interrupts on VM entry, and —
when the VM runs in paratick mode — injects virtual scheduler ticks.

``Hypervisor``/``VirtualMachine`` are re-exported lazily to keep the
import graph acyclic (``repro.host.kvm`` depends on the metrics layer,
which depends on ``repro.host.exitreasons``).
"""

from repro.host.costs import CostModel, DEFAULT_COSTS
from repro.host.exitreasons import ExitReason, ExitTag, TIMER_TAGS
from repro.host.vcpu import VCpu, VcpuState

__all__ = [
    "CostModel",
    "DEFAULT_COSTS",
    "ExitReason",
    "ExitTag",
    "TIMER_TAGS",
    "Hypervisor",
    "VirtualMachine",
    "VCpu",
    "VcpuState",
]

_LAZY = {"Hypervisor", "VirtualMachine"}


def __getattr__(name: str):
    if name in _LAZY:
        from repro.host import kvm

        return getattr(kvm, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
