"""VM-exit taxonomy.

Exit reasons mirror the VMX basic exit reasons KVM sees; each recorded
exit additionally carries an :class:`ExitTag` identifying the *semantic*
cause, because the paper's headline metric is specifically *timer-related*
exits (§6: arming the guest tick timer, delivering host ticks, delivering
guest ticks) as distinct from IPI/I/O/other exits.
"""

from __future__ import annotations

import enum


class ExitReason(enum.Enum):
    """Architectural VM-exit reason (subset relevant to the timer path)."""

    #: Guest executed WRMSR on an intercepted register.
    MSR_WRITE = "msr_write"
    #: A host-owned external interrupt arrived while in guest mode.
    EXTERNAL_INTERRUPT = "external_interrupt"
    #: The VMX preemption timer expired (KVM's guest-timer optimization).
    PREEMPTION_TIMER = "preemption_timer"
    #: Guest executed HLT.
    HLT = "hlt"
    #: Guest signalled an I/O doorbell (virtio kick).
    IO_INSTRUCTION = "io_instruction"
    #: Guest executed VMCALL.
    HYPERCALL = "hypercall"
    #: Pause-loop exiting fired (only when PLE is enabled).
    PAUSE = "pause"
    #: EPT violation / page-fault class exits (background noise).
    EPT_VIOLATION = "ept_violation"
    #: ARM: guest accessed a trapped system register (CNTV_*, GIC ICC_*).
    SYSREG_TRAP = "sysreg_trap"
    #: ARM: the virtual generic timer (vtimer) fired while in guest mode.
    VTIMER_IRQ = "vtimer_irq"


class ExitTag(enum.Enum):
    """Semantic cause of an exit, for the paper's metric split."""

    #: Arming/cancelling the guest tick or wake timer (TSC_DEADLINE write).
    TIMER_PROGRAM = "timer_program"
    #: Delivery of the guest's own (virtual LAPIC / preemption) timer.
    TIMER_GUEST_TICK = "timer_guest_tick"
    #: Host scheduler tick interrupting the running guest.
    TIMER_HOST_TICK = "timer_host_tick"
    #: Reschedule / function-call IPIs between vCPUs.
    IPI = "ipi"
    #: I/O submission and completion interrupts.
    IO = "io"
    #: Idle transitions (HLT).
    IDLE = "idle"
    #: End-of-interrupt writes (only when virtual EOI is off).
    EOI = "eoi"
    #: Paravirt calls.
    HYPERCALL = "hypercall"
    #: Everything else (EPT violations, PLE, instruction emulation...).
    OTHER = "other"


#: Tags the paper counts as scheduler-tick-management overhead.
TIMER_TAGS = frozenset(
    {ExitTag.TIMER_PROGRAM, ExitTag.TIMER_GUEST_TICK, ExitTag.TIMER_HOST_TICK}
)
