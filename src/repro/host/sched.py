"""Host CPU scheduler.

Places vCPUs on physical CPUs. Two regimes:

* **pinned 1:1** — the paper's evaluation setup (§6 never overcommits;
  PLE is disabled precisely because each vCPU owns a physical CPU). A
  pinned vCPU is the only candidate for its CPU, so scheduling reduces
  to run/block bookkeeping.
* **time-shared** — round-robin among runnable vCPUs sharing a CPU, with
  preemption at host-tick boundaries. This regime backs the §3.1/§3.3
  overcommit analysis (simulated cross-check of Table 1) and the
  ``examples/overcommit_ticks.py`` demo.

The scheduler only *decides*; the per-vCPU executors in
:mod:`repro.host.kvm` perform the transitions and account the costs.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.errors import HostError
from repro.host.vcpu import VCpu, VcpuState


class HostScheduler:
    """Per-physical-CPU run queues of vCPUs."""

    def __init__(self, ncpus: int):
        self._ready: list[deque[VCpu]] = [deque() for _ in range(ncpus)]
        self._running: list[Optional[VCpu]] = [None] * ncpus
        #: vCPU context switches performed (preemptions + dispatches).
        self.switches = 0

    # ------------------------------------------------------------- queries

    def running_on(self, pcpu_index: int) -> Optional[VCpu]:
        """The vCPU currently holding ``pcpu_index``, if any."""
        return self._running[pcpu_index]

    def waiters_on(self, pcpu_index: int) -> int:
        """Runnable vCPUs queued behind the current one."""
        return len(self._ready[pcpu_index])

    def wants_preemption(self, pcpu_index: int) -> bool:
        """True when a host-tick boundary should rotate the CPU."""
        return len(self._ready[pcpu_index]) > 0

    # ---------------------------------------------------------- transitions

    def acquire(self, vcpu: VCpu) -> bool:
        """Try to give ``vcpu`` its CPU now.

        Returns True (and marks it running) when the CPU is free;
        otherwise queues it READY and returns False.
        """
        idx = vcpu.pcpu.index
        holder = self._running[idx]
        if holder is vcpu:
            return True
        if holder is None:
            self._running[idx] = vcpu
            self.switches += 1
            return True
        if vcpu in self._ready[idx]:
            raise HostError(f"{vcpu!r} queued twice")
        vcpu.state = VcpuState.READY
        vcpu.ready_since_ns = vcpu.pcpu._sim.now
        self._ready[idx].append(vcpu)
        return False

    def release(self, vcpu: VCpu) -> Optional[VCpu]:
        """``vcpu`` gives up its CPU (block or preemption).

        Returns the next vCPU to dispatch on that CPU, if any (already
        marked running).
        """
        idx = vcpu.pcpu.index
        if self._running[idx] is not vcpu:
            raise HostError(f"{vcpu!r} released a CPU it does not hold")
        self._running[idx] = None
        queue = self._ready[idx]
        if queue:
            nxt = queue.popleft()
            self._running[idx] = nxt
            self.switches += 1
            return nxt
        return None

    def requeue(self, vcpu: VCpu) -> None:
        """Put a preempted (still-runnable) vCPU at the tail of its queue."""
        idx = vcpu.pcpu.index
        if self._running[idx] is vcpu:
            raise HostError(f"{vcpu!r} still marked running")
        vcpu.state = VcpuState.READY
        vcpu.ready_since_ns = vcpu.pcpu._sim.now
        self._ready[idx].append(vcpu)

    def grant_next(self, pcpu_index: int) -> Optional[VCpu]:
        """Hand an idle CPU to its next waiter (marked running).

        Used when a vCPU vanished without releasing — a VM-wide suspend
        forgets its claims — so waiters from other VMs are not orphaned.
        Returns None when the CPU is busy or nobody waits.
        """
        if self._running[pcpu_index] is not None:
            return None
        queue = self._ready[pcpu_index]
        if not queue:
            return None
        nxt = queue.popleft()
        self._running[pcpu_index] = nxt
        self.switches += 1
        return nxt

    def forget(self, vcpu: VCpu) -> None:
        """Remove a vCPU entirely (shutdown)."""
        idx = vcpu.pcpu.index
        if self._running[idx] is vcpu:
            self._running[idx] = None
        try:
            self._ready[idx].remove(vcpu)
        except ValueError:
            pass
