"""Paratick-vs-baseline comparisons and plain-text tables.

The paper reports three relative quantities per workload (Figs. 4–6):
the change in VM exits, in system throughput and in execution time,
paratick relative to vanilla (tickless) Linux. :func:`compare_runs`
computes them with the paper's sign conventions:

* VM exits: negative is better ("−50 %" = half the exits);
* throughput: positive is better ("+7 %" = 7 % more work per cycle,
  computed from the cycle reduction for the same work);
* execution time: negative is better ("−2 %" = 2 % faster).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import ReproError
from repro.metrics.perf import RunMetrics


@dataclass(frozen=True)
class Comparison:
    """Relative performance of a candidate run vs a baseline run."""

    label: str
    #: (candidate / baseline − 1) of total VM exits. Negative = fewer.
    vm_exits: float
    #: (baseline_cycles / candidate_cycles − 1). Positive = more
    #: throughput per cycle (the paper's "system throughput" axis).
    throughput: float
    #: (candidate / baseline − 1) of execution time. Negative = faster.
    exec_time: float

    def row(self) -> tuple[str, str, str, str]:
        return (
            self.label,
            f"{self.vm_exits:+.1%}",
            f"{self.throughput:+.1%}",
            f"{self.exec_time:+.1%}",
        )


def compare_runs(baseline: RunMetrics, candidate: RunMetrics, label: str = "") -> Comparison:
    """Compare a candidate (paratick) run against a baseline (tickless)."""
    if baseline.total_exits == 0 or baseline.total_cycles == 0 or baseline.exec_time_ns == 0:
        raise ReproError(f"degenerate baseline run {baseline.label!r}")
    if candidate.total_cycles == 0:
        raise ReproError(f"degenerate candidate run {candidate.label!r}")
    return Comparison(
        label=label or candidate.label,
        vm_exits=candidate.total_exits / baseline.total_exits - 1.0,
        throughput=baseline.total_cycles / candidate.total_cycles - 1.0,
        exec_time=candidate.exec_time_ns / baseline.exec_time_ns - 1.0,
    )


#: Columns of :func:`overhead_breakdown_rows`, in order.
BREAKDOWN_HEADERS = (
    "run", "exec", "useful%", "overhead%", "tick%", "steal%", "exits/s",
)


def overhead_breakdown_rows(runs: Iterable[RunMetrics]) -> list[tuple[str, ...]]:
    """Grid-wide overhead breakdown, one row per run.

    This is the summary the virtual-perf CLI and the parallel engine
    print after a grid: where each run's cycles went (useful guest work
    vs virtualization overhead vs the tick path specifically), how much
    runnable time was stolen, and the exit rate — the paper's Table 1
    quantities, computed per cell instead of aggregated.
    """
    from repro.hw.cpu import CycleDomain
    from repro.sim.timebase import fmt_time

    rows = []
    for m in runs:
        total = m.total_cycles or 1
        clock_ratio = m.total_cycles / max(1, sum(m.ledger.values()))
        tick_cycles = (
            m.ledger.get(CycleDomain.HOST_TICK, 0) + m.ledger.get(CycleDomain.POLLUTION, 0)
        ) * clock_ratio
        rows.append((
            m.label,
            fmt_time(m.exec_time_ns),
            f"{m.useful_cycles / total:.1%}",
            f"{m.overhead_ratio:.1%}",
            f"{tick_cycles / total:.1%}",
            f"{m.steal_ratio:.1%}",
            f"{m.exits_per_second():,.0f}",
        ))
    return rows


def format_overhead_breakdown(runs: Iterable[RunMetrics], *, title: str = "") -> str:
    """Aligned text table of :func:`overhead_breakdown_rows`."""
    return format_table(BREAKDOWN_HEADERS, overhead_breakdown_rows(runs), title=title)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[str]], *, title: str = "") -> str:
    """Render an aligned plain-text table (the benches print these)."""
    rows = [tuple(str(c) for c in r) for r in rows]
    widths = [len(h) for h in headers]
    for r in rows:
        if len(r) != len(headers):
            raise ReproError(f"row {r!r} does not match headers {headers!r}")
        for i, c in enumerate(r):
            widths[i] = max(widths[i], len(c))
    lines = []
    if title:
        lines.append(title)
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    lines.append(fmt.format(*headers))
    lines.append("  ".join("-" * w for w in widths))
    for r in rows:
        lines.append(fmt.format(*r))
    return "\n".join(lines)
