"""Aggregation across runs: ratio summaries and integer-exact merges.

Two layers with very different numeric rules:

* :func:`aggregate_improvements` — the paper's summary tables (2, 3, 4)
  report the *average* improvement across a benchmark suite. Averaging
  ratios is done on the geometric mean of the ratio factors (the
  standard for normalized benchmark results), then converted back to a
  percentage change. Ratios are floats by nature; that is fine.

* :func:`merge_run_metrics` — combining *measurements* (nanoseconds,
  cycles, exit counts) must never route an integer through a float:
  above 2**53 a float silently rounds, so ``float(2**60 + 1)`` loses
  the ``+ 1`` and conservation breaks. Every counter here is merged
  with Python integer arithmetic only; the fleet aggregator
  (:mod:`repro.fleet.aggregate`) builds on the same rule.
"""

from __future__ import annotations

from typing import Iterable

from repro.metrics.counters import ExitCounters
from repro.metrics.perf import RunMetrics
from repro.metrics.report import Comparison
from repro.sim.stats import geomean


def aggregate_improvements(comparisons: Iterable[Comparison], label: str = "average") -> Comparison:
    """Geometric-mean aggregate of a suite of comparisons."""
    comps = list(comparisons)
    if not comps:
        raise ValueError("nothing to aggregate")
    return Comparison(
        label=label,
        vm_exits=geomean([1.0 + c.vm_exits for c in comps]) - 1.0,
        throughput=geomean([1.0 + c.throughput for c in comps]) - 1.0,
        exec_time=geomean([1.0 + c.exec_time for c in comps]) - 1.0,
    )


def _merge_extra_value(acc, val):
    """Sum two extra values without ever promoting an int to float.

    ``int + int`` stays an exact int at any magnitude. A float only
    appears when one of the inputs already is one (a genuine rate or
    ratio extra), never as an intermediate for integer inputs.
    """
    if isinstance(acc, bool) or isinstance(val, bool):
        raise ValueError("boolean extras cannot be summed")
    return acc + val


def merge_run_metrics(
    metrics: Iterable[RunMetrics], *, label: str = "merged"
) -> RunMetrics:
    """Integer-exact merge of several runs into one :class:`RunMetrics`.

    The merge treats the inputs as parallel shards of one larger
    measurement (the fleet layer's per-host results, a sweep's
    repetitions):

    * ``exec_time_ns`` — the **makespan**: ``max`` over inputs;
    * cycle counters, ledger nanoseconds — key-wise integer sums;
    * ``exits`` — :meth:`ExitCounters.merge` (counter addition);
    * ``extra`` — key-wise sums; integer extras are added with integer
      arithmetic only, so nanosecond totals survive past 2**53 exactly.
      Non-numeric extras (strings) must agree across inputs or the
      merge refuses rather than silently picking one.

    Raises :class:`ValueError` on an empty input.
    """
    merged = None
    for m in metrics:
        if merged is None:
            merged = RunMetrics(
                label=label,
                exec_time_ns=int(m.exec_time_ns),
                total_cycles=int(m.total_cycles),
                useful_cycles=int(m.useful_cycles),
                overhead_cycles=int(m.overhead_cycles),
                exits=ExitCounters().merge(m.exits),
                ledger=dict(m.ledger),
                extra=dict(m.extra),
            )
            continue
        merged.exec_time_ns = max(merged.exec_time_ns, int(m.exec_time_ns))
        merged.total_cycles += int(m.total_cycles)
        merged.useful_cycles += int(m.useful_cycles)
        merged.overhead_cycles += int(m.overhead_cycles)
        merged.exits = merged.exits.merge(m.exits)
        for domain, ns in m.ledger.items():
            merged.ledger[domain] = merged.ledger.get(domain, 0) + int(ns)
        for key, val in m.extra.items():
            if key not in merged.extra:
                merged.extra[key] = val
            elif isinstance(val, str) or isinstance(merged.extra[key], str):
                if merged.extra[key] != val:
                    raise ValueError(
                        f"extra {key!r} disagrees across runs "
                        f"({merged.extra[key]!r} vs {val!r}) and cannot be summed"
                    )
            else:
                merged.extra[key] = _merge_extra_value(merged.extra[key], val)
    if merged is None:
        raise ValueError("nothing to merge")
    return merged
