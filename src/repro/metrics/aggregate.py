"""Aggregation of per-benchmark comparisons into summary rows.

The paper's summary tables (2, 3 and 4) report the *average* improvement
across a benchmark suite. Averaging ratios is done on the geometric mean
of the ratio factors (the standard for normalized benchmark results),
then converted back to a percentage change.
"""

from __future__ import annotations

from typing import Iterable

from repro.metrics.report import Comparison
from repro.sim.stats import geomean


def aggregate_improvements(comparisons: Iterable[Comparison], label: str = "average") -> Comparison:
    """Geometric-mean aggregate of a suite of comparisons."""
    comps = list(comparisons)
    if not comps:
        raise ValueError("nothing to aggregate")
    return Comparison(
        label=label,
        vm_exits=geomean([1.0 + c.vm_exits for c in comps]) - 1.0,
        throughput=geomean([1.0 + c.throughput for c in comps]) - 1.0,
        exec_time=geomean([1.0 + c.exec_time for c in comps]) - 1.0,
    )
