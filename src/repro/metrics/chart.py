"""ASCII bar charts for the paper's figures.

Figures 4–6 are grouped bar charts of per-benchmark relative metrics.
This renderer draws them in plain text so the figures can be regenerated
in any terminal, with no plotting dependency:

    blackscholes  -63% |############                |
    dedup         -43% |########                    |

Bars are scaled to the largest magnitude in the series; negative values
(improvements, for the exits/exec-time panels) and positive values
(throughput panel) are handled symmetrically.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import ReproError
from repro.metrics.report import Comparison


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    title: str = "",
    width: int = 40,
    fmt: str = "{:+.1%}",
) -> str:
    """Render one metric series as a horizontal bar chart."""
    if len(labels) != len(values):
        raise ReproError("labels and values must align")
    if not labels:
        raise ReproError("empty chart")
    if width < 4:
        raise ReproError("width too small")
    peak = max(abs(v) for v in values) or 1.0
    label_w = max(len(l) for l in labels)
    value_strs = [fmt.format(v) for v in values]
    value_w = max(len(s) for s in value_strs)
    lines = [title] if title else []
    for label, value, vs in zip(labels, values, value_strs):
        filled = round(abs(value) / peak * width)
        bar = "#" * filled + " " * (width - filled)
        lines.append(f"{label:<{label_w}}  {vs:>{value_w}} |{bar}|")
    return "\n".join(lines)


def comparison_panels(
    comparisons: Iterable[Comparison],
    *,
    metric_titles: tuple[str, str, str] = (
        "(a) VM exits",
        "(b) system throughput",
        "(c) execution time",
    ),
    width: int = 40,
) -> str:
    """The three panels of a Fig. 4/5/6-style figure, stacked."""
    comps = list(comparisons)
    if not comps:
        raise ReproError("nothing to chart")
    labels = [c.label for c in comps]
    panels = [
        bar_chart(labels, [c.vm_exits for c in comps], title=metric_titles[0], width=width),
        bar_chart(labels, [c.throughput for c in comps], title=metric_titles[1], width=width),
        bar_chart(labels, [c.exec_time for c in comps], title=metric_titles[2], width=width),
    ]
    return "\n\n".join(panels)
