"""A first-order CPU energy model (extension).

Supports two claims the paper makes but does not measure:

* §2 (citing [12]): classic periodic ticks can dominate the energy of
  idle systems;
* §6.2: paratick's throughput improvement "reduces energy consumption".

Model: each vCPU's core draws ``active_power_w`` while busy, the
resident C-state's fraction of it while halted (requires the cpuidle
model, ``VmSpec.cpuidle=True``), and the shallow-idle fraction for any
remaining un-attributed idle time. First-order and relative — the units
only matter as ratios between runs, like every other metric here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.guest.cpuidle import C1, C_STATES
from repro.metrics.perf import RunMetrics


@dataclass(frozen=True)
class EnergyModel:
    """Per-core power parameters."""

    #: Core power while executing, watts.
    active_power_w: float = 10.0
    #: Power fraction for idle time not attributed to any C-state
    #: (cpuidle model off, or time outside recorded halts).
    default_idle_fraction: float = C1.power_fraction

    def __post_init__(self) -> None:
        if self.active_power_w <= 0:
            raise ConfigError("active power must be positive")
        if not 0.0 <= self.default_idle_fraction <= 1.0:
            raise ConfigError("idle fraction must be in [0,1]")


@dataclass(frozen=True)
class EnergyEstimate:
    """Joules over the run, split by where they went."""

    active_j: float
    cstate_j: float
    idle_j: float

    @property
    def total_j(self) -> float:
        return self.active_j + self.cstate_j + self.idle_j


def estimate_energy(
    metrics: RunMetrics,
    *,
    model: EnergyModel = EnergyModel(),
    clock_hz: int = 2_200_000_000,
) -> EnergyEstimate:
    """Energy for the vCPU cores of one run.

    Active time is derived from the cycle total; C-state residencies
    come from the run's extras (populated when ``cpuidle`` was on);
    everything else over ``vcpus x exec_time`` is shallow idle.
    """
    ncores = int(metrics.extra.get("vcpus", 1))
    span_ns = metrics.exec_time_ns * ncores
    active_ns = metrics.total_cycles * 1_000_000_000 / clock_hz
    active_ns = min(active_ns, span_ns)
    fractions = {s.name: s.power_fraction for s in C_STATES}
    cstate_j = 0.0
    attributed_ns = 0.0
    for key, value in metrics.extra.items():
        if key.startswith("cstate_") and key.endswith("_ns"):
            name = key[len("cstate_"):-len("_ns")]
            frac = fractions.get(name, model.default_idle_fraction)
            cstate_j += value * 1e-9 * model.active_power_w * frac
            attributed_ns += value
    idle_ns = max(span_ns - active_ns - attributed_ns, 0.0)
    return EnergyEstimate(
        active_j=active_ns * 1e-9 * model.active_power_w,
        cstate_j=cstate_j,
        idle_j=idle_ns * 1e-9 * model.active_power_w * model.default_idle_fraction,
    )
