"""VM-exit counters.

Counts exits per ``(reason, tag)`` pair and per vCPU — the raw material
for the paper's "VM exits" metric and for the trace-level assertions in
the integration tests ("tickless idle entry produces exactly one
TIMER_PROGRAM exit; paratick produces none unless a wake timer differs").
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable

from repro.host.exitreasons import TIMER_TAGS, ExitReason, ExitTag


@dataclass(frozen=True)
class ExitRecordKey:
    """Classification key of one exit."""

    reason: ExitReason
    tag: ExitTag


class ExitCounters:
    """Per-VM exit counters, also split per vCPU."""

    def __init__(self) -> None:
        self._by_key: Counter[ExitRecordKey] = Counter()
        self._by_vcpu: Counter[int] = Counter()

    def record(self, vcpu_index: int, reason: ExitReason, tag: ExitTag) -> None:
        """Record one exit."""
        self._by_key[ExitRecordKey(reason, tag)] += 1
        self._by_vcpu[vcpu_index] += 1

    # --------------------------------------------------------------- totals

    @property
    def total(self) -> int:
        """All exits."""
        return sum(self._by_key.values())

    def by_reason(self, reason: ExitReason) -> int:
        return sum(c for k, c in self._by_key.items() if k.reason is reason)

    def by_tag(self, tag: ExitTag) -> int:
        return sum(c for k, c in self._by_key.items() if k.tag is tag)

    def by_tags(self, tags: Iterable[ExitTag]) -> int:
        wanted = frozenset(tags)
        return sum(c for k, c in self._by_key.items() if k.tag in wanted)

    @property
    def timer_related(self) -> int:
        """Exits caused by scheduler-tick management (the paper's target)."""
        return self.by_tags(TIMER_TAGS)

    def for_vcpu(self, vcpu_index: int) -> int:
        return self._by_vcpu[vcpu_index]

    def breakdown(self) -> dict[ExitRecordKey, int]:
        """Copy of the full (reason, tag) -> count table."""
        return dict(self._by_key)

    def tag_breakdown(self) -> dict[ExitTag, int]:
        out: dict[ExitTag, int] = {}
        for k, c in self._by_key.items():
            out[k.tag] = out.get(k.tag, 0) + c
        return out

    def merge(self, other: "ExitCounters") -> "ExitCounters":
        """Sum of two counter sets (used to aggregate multi-VM scenarios)."""
        out = ExitCounters()
        out._by_key = self._by_key + other._by_key
        out._by_vcpu = self._by_vcpu + other._by_vcpu
        return out

    # --------------------------------------------------------- serialization

    def to_dict(self) -> dict:
        """JSON-safe encoding (the experiment cache stores these)."""
        return {
            "by_key": [
                [k.reason.value, k.tag.value, c]
                for k, c in sorted(
                    self._by_key.items(), key=lambda kc: (kc[0].reason.value, kc[0].tag.value)
                )
            ],
            "by_vcpu": {str(i): c for i, c in sorted(self._by_vcpu.items())},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExitCounters":
        """Inverse of :meth:`to_dict`; raises on malformed input."""
        out = cls()
        for reason, tag, count in data["by_key"]:
            out._by_key[ExitRecordKey(ExitReason(reason), ExitTag(tag))] = int(count)
        for idx, count in data["by_vcpu"].items():
            out._by_vcpu[int(idx)] = int(count)
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ExitCounters):
            return NotImplemented
        return self._by_key == other._by_key and self._by_vcpu == other._by_vcpu

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ExitCounters total={self.total} timer={self.timer_related}>"
