"""Measurement: exit counters, perf-style reports and aggregation.

Mirrors what the paper measured with ``perf`` (§6): VM exits (split by
reason and semantic tag), CPU cycles as the system-throughput proxy, and
application execution time.
"""

from repro.metrics.counters import ExitCounters, ExitRecordKey
from repro.metrics.perf import RunMetrics, collect_metrics
from repro.metrics.report import Comparison, compare_runs, format_table
from repro.metrics.aggregate import aggregate_improvements, merge_run_metrics

__all__ = [
    "merge_run_metrics",
    "ExitCounters",
    "ExitRecordKey",
    "collect_metrics",
    "RunMetrics",
    "Comparison",
    "compare_runs",
    "format_table",
    "aggregate_improvements",
]
