"""Run-level measurement, mirroring the paper's three metrics (§6).

* **VM exits** — from the hypervisor's per-VM counters;
* **system throughput** — total busy CPU cycles for a fixed amount of
  work ("We use CPU cycles as a measure for system throughput");
* **execution time** — simulated wall-clock to workload completion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.hw.cpu import CycleDomain, Machine, OVERHEAD_DOMAINS
from repro.metrics.counters import ExitCounters


@dataclass
class RunMetrics:
    """Everything measured in one simulation run."""

    #: Scenario label ("blackscholes/paratick/seq" etc.).
    label: str
    #: Simulated wall-clock from start to workload completion (ns).
    exec_time_ns: int
    #: Total busy cycles across all physical CPUs.
    total_cycles: int
    #: Cycles of useful guest application work (GUEST_USER).
    useful_cycles: int
    #: Cycles in overhead domains (world switches, handlers, pollution...).
    overhead_cycles: int
    #: Exit counters (merged across VMs).
    exits: ExitCounters
    #: Busy-ns ledger by domain.
    ledger: dict[CycleDomain, int] = field(default_factory=dict)
    #: Free-form extras (per-workload throughput units, iteration
    #: counts). Nanosecond and count extras are exact ints and must stay
    #: ints through any merge (see :func:`repro.metrics.aggregate.merge_run_metrics`);
    #: floats are reserved for genuine rates/ratios.
    extra: dict[str, "int | float | str"] = field(default_factory=dict)

    @property
    def total_exits(self) -> int:
        return self.exits.total

    @property
    def timer_exits(self) -> int:
        return self.exits.timer_related

    @property
    def overhead_ratio(self) -> float:
        """Fraction of busy cycles spent on virtualization overhead."""
        return self.overhead_cycles / self.total_cycles if self.total_cycles else 0.0

    @property
    def steal_ns(self) -> int:
        """Aggregate vCPU steal time (READY waits), 0 when never queued."""
        return int(self.extra.get("steal_ns", 0))

    @property
    def steal_ratio(self) -> float:
        """Steal time as a fraction of execution time (the guest's %st)."""
        return self.steal_ns / self.exec_time_ns if self.exec_time_ns else 0.0

    def exits_per_second(self) -> float:
        return self.total_exits / (self.exec_time_ns / 1e9) if self.exec_time_ns else 0.0

    # --------------------------------------------------------- serialization

    def to_json_dict(self) -> dict:
        """JSON-safe encoding; the experiment result cache round-trips
        through this, so it must capture *every* field."""
        return {
            "label": self.label,
            "exec_time_ns": self.exec_time_ns,
            "total_cycles": self.total_cycles,
            "useful_cycles": self.useful_cycles,
            "overhead_cycles": self.overhead_cycles,
            "exits": self.exits.to_dict(),
            "ledger": {d.value: ns for d, ns in sorted(self.ledger.items(), key=lambda kv: kv[0].value)},
            "extra": dict(self.extra),
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "RunMetrics":
        """Inverse of :meth:`to_json_dict`; raises on malformed input."""
        return cls(
            label=data["label"],
            exec_time_ns=int(data["exec_time_ns"]),
            total_cycles=int(data["total_cycles"]),
            useful_cycles=int(data["useful_cycles"]),
            overhead_cycles=int(data["overhead_cycles"]),
            exits=ExitCounters.from_dict(data["exits"]),
            ledger={CycleDomain(d): int(ns) for d, ns in data["ledger"].items()},
            extra={k: v for k, v in data["extra"].items()},
        )


def collect_metrics(
    label: str,
    machine: Machine,
    vms: list,
    *,
    exec_time_ns: int,
    extra: Optional[dict[str, float]] = None,
) -> RunMetrics:
    """Assemble :class:`RunMetrics` from a finished simulation."""
    counters = ExitCounters()
    for vm in vms:
        counters = counters.merge(vm.counters)
    ledger = machine.ledger()
    clock = machine.clock
    overhead_ns = sum(ns for d, ns in ledger.items() if d in OVERHEAD_DOMAINS)
    return RunMetrics(
        label=label,
        exec_time_ns=exec_time_ns,
        total_cycles=machine.total_busy_cycles(),
        useful_cycles=machine.total_busy_cycles(CycleDomain.GUEST_USER),
        overhead_cycles=clock.ns_to_cycles(overhead_ns),
        exits=counters,
        ledger=ledger,
        extra=dict(extra or {}),
    )
