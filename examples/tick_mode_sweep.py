#!/usr/bin/env python3
"""Where is each tick mechanism best? The §3.3 map, measured.

Sweeps average idle-period length (via a network-service model that
blocks on request/response round trips) and prints which mechanism
induces the fewest timer exits at each point — reproducing §3.3's
conclusion: tickless wins for long idle periods, periodic for very
short ones, and paratick dominates everywhere.

    python examples/tick_mode_sweep.py
"""


from repro import TickMode
from repro.experiments.runner import run_workload
from repro.metrics.report import format_table
from repro.sim.timebase import MSEC, USEC
from repro.workloads.micro import IdlePeriodWorkload


def main() -> None:
    rows = []
    for idle in (200 * USEC, 1 * MSEC, 4 * MSEC, 20 * MSEC, 100 * MSEC):
        per_mode = {}
        exec_ms = {}
        for mode in TickMode:
            m = run_workload(IdlePeriodWorkload(idle), tick_mode=mode, seed=5, noise=False)
            # Total exits: periodic's cost shows up as per-tick HLT/wake
            # churn rather than tagged timer exits, so count everything.
            per_mode[mode] = m.total_exits / (m.exec_time_ns / 1e9)
            exec_ms[mode] = m.exec_time_ns / 1e6
        rows.append(
            (
                f"{idle / 1000:.0f} us" if idle < MSEC else f"{idle / MSEC:.0f} ms",
                *(f"{per_mode[m]:,.0f}" for m in TickMode),
                *(f"{exec_ms[m]:,.0f}" for m in TickMode),
            )
        )
    print(
        format_table(
            ["avg idle period",
             "per exits/s", "nohz exits/s", "para exits/s",
             "per ms", "nohz ms", "para ms"],
            rows,
            title="VM exits/s and runtime vs idle-period length (nanosleep loop, §3.3)",
        )
    )
    print(
        "\nThe §3.3 trade-off, measured. Short idle periods make tickless\n"
        "guests exit thousands of times per second; the periodic column\n"
        "stays at ~f_tick exits but only because classic periodic kernels\n"
        "run low-resolution timers — the runtime columns show the 200 us\n"
        "sleeper taking ~20x longer under periodic ticks. Paratick keeps\n"
        "hrtimer precision and still beats tickless everywhere: it removes\n"
        "the tick-management exits while leaving application timers exact."
    )


if __name__ == "__main__":
    main()
