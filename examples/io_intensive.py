#!/usr/bin/env python3
"""I/O-intensive guests across device generations (paper §6.3 + §4.2).

Runs a sync-read fio job against the three storage classes. The paper
predicts (§4.2) that paratick's benefit grows as devices get faster —
the timer-path exits are a fixed per-operation cost, so the faster the
device, the larger their share of each operation. §6.3 closes with the
same point: "paratick's performance benefits will only increase as time
goes on, since state-of-the-art storage devices ... sport much lower
access latencies".

    python examples/io_intensive.py
"""

from repro import IoDeviceKind, TickMode
from repro.experiments.runner import run_workload
from repro.metrics.report import format_table
from repro.workloads import fio


def main() -> None:
    rows = []
    for kind in (IoDeviceKind.HDD, IoDeviceKind.SATA_SSD, IoDeviceKind.NVME_SSD):
        wl = fio.job("rndr", 4096, total_bytes=4 << 20)
        base = run_workload(wl, tick_mode=TickMode.TICKLESS, device_kind=kind, seed=3)
        para = run_workload(wl, tick_mode=TickMode.PARATICK, device_kind=kind, seed=3)
        mb = wl.total_bytes / (1 << 20)
        rows.append(
            (
                kind.value,
                f"{mb / (base.exec_time_ns / 1e9):.1f}",
                f"{mb / (para.exec_time_ns / 1e9):.1f}",
                f"{para.total_exits / base.total_exits - 1:+.1%}",
                f"{base.exec_time_ns / para.exec_time_ns - 1:+.1%}",
            )
        )
    print(
        format_table(
            ["device", "tickless MB/s", "paratick MB/s", "Δ exits", "Δ I/O throughput"],
            rows,
            title="fio rndr 4k, sync engine, 1 vCPU — device-class sweep",
        )
    )
    print(
        "\nOn an HDD the multi-millisecond access latency buries the timer\n"
        "overhead; on SSD-class devices each read's idle entry/exit timer\n"
        "writes become a visible share of the operation, and paratick's\n"
        "advantage grows with device speed — §4.2's prediction."
    )


if __name__ == "__main__":
    main()
