#!/usr/bin/env python3
"""Anatomy of one idle transition, traced event by event.

Runs the same tiny sleep/wake workload under tickless and paratick with
the structured tracer attached, then prints the event sequence around
the first few idle transitions — making the Fig. 1 vs Fig. 3 difference
visible at the single-event level rather than as aggregate counts.

    python examples/paratick_anatomy.py
"""

from repro import TickMode
from repro.experiments.runner import run_workload
from repro.sim.trace import RingTracer
from repro.sim.timebase import MSEC, USEC
from repro.workloads.micro import IdlePeriodWorkload


INTERESTING = ("idle_enter", "idle_exit", "vmexit", "inject")


def show(mode: TickMode, events: int = 26) -> None:
    tracer = RingTracer(capacity=100_000, kinds=INTERESTING)
    run_workload(
        IdlePeriodWorkload(6 * MSEC, iterations=8, work_cycles=2_000_000),
        tick_mode=mode,
        tracer=tracer,
        noise=False,
        seed=0,
    )
    print(f"\n=== {mode.value} ===")
    records = list(tracer.records)
    # Skip boot; start at the first idle entry.
    start = next(i for i, r in enumerate(records) if r.kind == "idle_enter")
    for r in records[start : start + events]:
        t_us = r.time / USEC
        if r.kind == "vmexit":
            reason, tag = r.detail
            print(f"  {t_us:10.1f} us  VM EXIT   {reason:<20} ({tag})")
        elif r.kind == "inject":
            vecs = ", ".join(str(v) for v in r.detail)
            print(f"  {t_us:10.1f} us  inject    vector(s) {vecs}")
        else:
            print(f"  {t_us:10.1f} us  {r.kind}")


def main() -> None:
    print(
        "One task sleeping 6 ms between 1 ms work bursts. Watch what each\n"
        "mode does to the hardware around idle entry and exit."
    )
    show(TickMode.TICKLESS)
    show(TickMode.PARATICK)
    print(
        "\nTickless brackets every idle period with msr_write exits\n"
        "(timer_program): stop/defer the tick going in, restart coming\n"
        "out. Paratick only arms a wake timer when something needs it —\n"
        "and vector 235 rides entries that happen anyway. Vector 236 is\n"
        "the guest's own timer; 253 a reschedule IPI."
    )


if __name__ == "__main__":
    main()
