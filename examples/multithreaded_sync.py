#!/usr/bin/env python3
"""Blocking synchronization under virtualization (paper §6.2).

Sweeps the synchronization rate of a 16-thread workload and shows how
the tickless guest's timer-management exits grow linearly with the
blocking rate while paratick's stay flat — the crossover behaviour §3.3
derives analytically, measured here on the full simulator.

    python examples/multithreaded_sync.py
"""

from repro import TickMode
from repro.experiments.runner import run_workload
from repro.metrics.report import format_table
from repro.workloads.micro import SyncStormWorkload


def main() -> None:
    rows = []
    for rate in (100, 500, 2_000, 8_000, 32_000):
        wl = SyncStormWorkload(threads=16, events_per_second=rate, duration_cycles=120_000_000)
        base = run_workload(wl, tick_mode=TickMode.TICKLESS, seed=1)
        para = run_workload(wl, tick_mode=TickMode.PARATICK, seed=1)
        secs = base.exec_time_ns / 1e9
        rows.append(
            (
                f"{rate:,}",
                f"{base.timer_exits / secs:,.0f}",
                f"{para.timer_exits / (para.exec_time_ns / 1e9):,.0f}",
                f"{para.total_exits / base.total_exits - 1:+.1%}",
                f"{base.total_cycles / para.total_cycles - 1:+.1%}",
                f"{para.exec_time_ns / base.exec_time_ns - 1:+.1%}",
            )
        )
    print(
        format_table(
            [
                "sync events/s",
                "tickless timer exits/s",
                "paratick timer exits/s",
                "Δ exits",
                "Δ throughput",
                "Δ exec time",
            ],
            rows,
            title="16 threads on 16 vCPUs, blocking synchronization sweep",
        )
    )
    print(
        "\nTickless timer exits scale with the blocking rate (each idle\n"
        "entry/exit touches the TSC_DEADLINE MSR); paratick's do not.\n"
        "Throughput gains grow with sync intensity; execution time moves\n"
        "much less, because most eliminated exits sit off the critical\n"
        "path (§4.2/§6.2)."
    )


if __name__ == "__main__":
    main()
