#!/usr/bin/env python3
"""Idle, overcommitted VMs: the classic periodic-tick failure (§3.1).

Places four idle 4-vCPU VMs on two physical CPUs (8 vCPUs per pCPU
pair). With classic periodic ticks every vCPU must be woken f_tick
times a second just to run a no-op tick handler; tickless and paratick
guests stay quiet. This is Table 1's W1/W2 regime, run on the full
simulator with host-scheduler time sharing instead of the closed-form
model.

    python examples/overcommit_ticks.py
"""

from repro.config import MachineSpec, TickMode, VmSpec
from repro.guest.kernel import GuestKernel
from repro.host.kvm import Hypervisor
from repro.hw.cpu import Machine
from repro.metrics.report import format_table
from repro.sim.engine import Simulator
from repro.sim.timebase import SEC


def run(mode: TickMode) -> tuple[int, float]:
    sim = Simulator(seed=0)
    machine = Machine(sim, MachineSpec(sockets=1, cpus_per_socket=2))
    hv = Hypervisor(sim, machine)
    kernels = []
    for v in range(4):
        vm = hv.create_vm(
            VmSpec(
                name=f"vm{v}",
                vcpus=4,
                tick_mode=mode,
                # Two vCPUs of each VM share pCPU0, two share pCPU1.
                pinned_cpus=(0, 1, 0, 1),
                noise=False,
            )
        )
        kernels.append(GuestKernel(vm))
    hv.start()
    sim.run(until=SEC)
    exits = sum(vm.counters.total for vm in hv.vms)
    busy_ms = machine.total_busy_ns() / 1e6
    return exits, busy_ms


def main() -> None:
    rows = []
    for mode in TickMode:
        exits, busy_ms = run(mode)
        rows.append((mode.value, f"{exits:,}", f"{busy_ms:.1f}"))
    print(
        format_table(
            ["tick mode", "VM exits/s", "host CPU busy (ms per 2 CPU-seconds)"],
            rows,
            title="4 idle VMs x 4 vCPUs on 2 physical CPUs, 1 simulated second",
        )
    )
    print(
        "\n16 idle vCPUs with periodic ticks cost the host thousands of\n"
        "wakeups and exits per second (§3.1's overcommit problem);\n"
        "tickless and paratick guests leave the host idle."
    )


if __name__ == "__main__":
    main()
