#!/usr/bin/env python3
"""Quickstart: compare tick modes on one workload.

Runs a blocking-synchronization-heavy PARSEC model (streamcluster, 4
threads) under all three scheduler-tick mechanisms and prints the three
metrics the paper evaluates: VM exits, CPU cycles (system throughput
proxy) and execution time.

    python examples/quickstart.py
"""

from repro import TickMode
from repro.experiments.runner import run_workload
from repro.metrics.report import format_table
from repro.workloads import parsec


def main() -> None:
    workload = parsec.benchmark("streamcluster", threads=4, target_cycles=200_000_000)

    rows = []
    results = {}
    for mode in TickMode:
        m = run_workload(workload, tick_mode=mode, seed=7)
        results[mode] = m
        rows.append(
            (
                mode.value,
                f"{m.total_exits:,}",
                f"{m.timer_exits:,}",
                f"{m.total_cycles / 1e6:,.0f} M",
                f"{m.exec_time_ns / 1e6:.2f} ms",
            )
        )

    print(
        format_table(
            ["tick mode", "VM exits", "timer exits", "CPU cycles", "exec time"],
            rows,
            title="streamcluster, 4 threads, 4 vCPUs (seed 7)",
        )
    )

    base, para = results[TickMode.TICKLESS], results[TickMode.PARATICK]
    print(
        f"\nparatick vs tickless: "
        f"{para.total_exits / base.total_exits - 1:+.1%} exits, "
        f"{base.total_cycles / para.total_cycles - 1:+.1%} throughput, "
        f"{para.exec_time_ns / base.exec_time_ns - 1:+.1%} execution time"
    )
    print(
        "\nThe mechanism at work: tickless pays two TSC_DEADLINE-write VM\n"
        "exits per idle transition and two exits per active tick; paratick\n"
        "rides its ticks on VM entries the host performs anyway (vector 235)."
    )


if __name__ == "__main__":
    main()
